"""Parametric synthetic workload generator.

One configurable generator covers the structural space the DaCapo models
need (:mod:`repro.workloads.dacapo` instantiates it per benchmark):

* data-parallel work units with lognormal size variation,
* LLC-miss clusters drawn through the DRAM model (variable latency),
* managed allocation (driving zero-init bursts and the GC schedule),
* critical sections over a configurable lock set,
* optional barrier phases (tile renderers) and a serialized fraction
  executed under a global lock (limited-parallelism workloads),
* per-thread work imbalance (scaling bottlenecks).

Generation is fully deterministic in ``(seed, thread index)``; the same
config always yields the identical logical program, which the simulator
then executes at any frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.common.rng import rng_stream
from repro.common.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)
from repro.arch.dram import DramConfig, DramModel
from repro.arch.segments import ComputeSegment, MemorySegment
from repro.workloads.items import (
    Acquire,
    Action,
    Allocate,
    BarrierWait,
    Release,
    Run,
)
from repro.workloads.program import Program, ThreadProgram

#: Barrier-id namespace for generated application barriers (below the GC
#: collector's 1 << 20 namespace).
_APP_BARRIER_BASE = 1 << 10
#: Lock id reserved for the global serialization lock.
_GLOBAL_LOCK = 0
#: First id for ordinary critical-section locks.
_CS_LOCK_BASE = 1


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Knobs of the synthetic workload generator."""

    name: str = "synthetic"
    seed: int = 1
    n_threads: int = 4
    #: Work units per thread.
    n_units: int = 500
    #: Mean instructions per unit (before per-thread imbalance).
    unit_insns: int = 60_000
    #: Coefficient of variation of unit sizes.
    unit_insns_cv: float = 0.3
    cpi: float = 0.6
    #: LLC-miss clusters per 1000 instructions (memory intensity).
    clusters_per_kinsn: float = 0.6
    #: Mean dependent-chain depth of a cluster (geometric).
    chain_depth_mean: float = 1.6
    #: DRAM row locality of cluster accesses.
    chain_locality: float = 0.4
    #: Mean bytes allocated per unit (0 disables allocation).
    alloc_bytes_per_unit: int = 16_384
    #: Allocate every k-th unit (allocation batch granularity).
    alloc_every: int = 4
    #: Probability a unit contains a critical section.
    cs_probability: float = 0.10
    #: Instructions executed inside a critical section.
    cs_insns: int = 8_000
    #: Number of distinct critical-section locks.
    n_locks: int = 4
    #: Barrier every k units (0 disables barriers).
    barrier_period: int = 0
    #: Per-thread work multipliers; thread t gets
    #: ``unit_insns * (1 + thread_imbalance * t / (n_threads - 1))``.
    thread_imbalance: float = 0.0
    #: Per-thread *memory intensity* skew: thread t's LLC-miss cluster rate
    #: is multiplied by ``1 + memory_skew * (2t/(n_threads-1) - 1)`` —
    #: some threads are memory-bound, others compute-bound, so the critical
    #: thread changes with frequency (what across-epoch CTP is for).
    memory_skew: float = 0.0
    #: Program-level phase behaviour: memory intensity and allocation rate
    #: are modulated by ``1 + phase_amplitude * sin(...)`` with
    #: ``phase_periods`` full cycles over the run (all threads in phase,
    #: mirroring input-driven phases). Phases are what a *dynamic* energy
    #: manager exploits over a static-optimal frequency (Figure 7).
    phase_amplitude: float = 0.0
    phase_periods: float = 8.0
    #: Fraction of each unit's instructions executed under the global lock.
    serialized_fraction: float = 0.0
    heap_mb: int = 98
    nursery_mb: int = 16
    survival_rate: float = 0.2
    #: Free-form classification tags.
    tags: Dict[str, str] = field(default_factory=dict)
    dram: DramConfig = field(default_factory=DramConfig)

    def __post_init__(self) -> None:
        check_positive("n_threads", self.n_threads)
        check_positive("n_units", self.n_units)
        check_positive("unit_insns", self.unit_insns)
        check_positive("cpi", self.cpi)
        check_non_negative("clusters_per_kinsn", self.clusters_per_kinsn)
        check_non_negative("alloc_bytes_per_unit", self.alloc_bytes_per_unit)
        check_positive("alloc_every", self.alloc_every)
        check_fraction("cs_probability", self.cs_probability)
        check_fraction("serialized_fraction", self.serialized_fraction)
        check_fraction("chain_locality", self.chain_locality)
        check_non_negative("thread_imbalance", self.thread_imbalance)
        check_fraction("memory_skew", self.memory_skew)
        check_fraction("phase_amplitude", self.phase_amplitude)
        check_positive("phase_periods", self.phase_periods)
        check_non_negative("barrier_period", self.barrier_period)
        check_positive("heap_mb", self.heap_mb)
        check_positive("nursery_mb", self.nursery_mb)

    def scaled(self, scale: float) -> "SyntheticWorkloadConfig":
        """A copy with the run length scaled by ``scale`` (units count).

        Scaling preserves per-unit behaviour (memory intensity, sync rates,
        allocation density), so GC frequency and predictor error structure
        survive; only the run gets shorter.
        """
        check_positive("scale", scale)
        return replace(self, n_units=max(8, int(round(self.n_units * scale))))


def build_synthetic_program(config: SyntheticWorkloadConfig) -> Program:
    """Generate the deterministic :class:`Program` described by ``config``."""
    threads: List[ThreadProgram] = []
    for t in range(config.n_threads):
        threads.append(_build_thread(config, t))
    return Program(
        name=config.name,
        threads=tuple(threads),
        heap_bytes=config.heap_mb << 20,
        nursery_bytes=config.nursery_mb << 20,
        survival_rate=config.survival_rate,
        seed=config.seed,
        tags=dict(config.tags),
    )


def _build_thread(config: SyntheticWorkloadConfig, t: int) -> ThreadProgram:
    rng = rng_stream(config.seed, "thread", t)
    dram = DramModel(config.dram)
    actions: List[Action] = []
    if config.n_threads > 1 and config.thread_imbalance > 0:
        work_multiplier = 1.0 + config.thread_imbalance * t / (config.n_threads - 1)
    else:
        work_multiplier = 1.0
    if config.n_threads > 1 and config.memory_skew > 0:
        memory_multiplier = 1.0 + config.memory_skew * (
            2.0 * t / (config.n_threads - 1) - 1.0
        )
    else:
        memory_multiplier = 1.0
    barrier_counter = 0
    phase_omega = 2.0 * np.pi * config.phase_periods / config.n_units
    for unit in range(config.n_units):
        if config.phase_amplitude:
            phase_mod = 1.0 + config.phase_amplitude * float(
                np.sin(phase_omega * unit)
            )
        else:
            phase_mod = 1.0
        if config.barrier_period and unit and unit % config.barrier_period == 0:
            actions.append(
                BarrierWait(
                    barrier_id=_APP_BARRIER_BASE + barrier_counter,
                    parties=config.n_threads,
                )
            )
            barrier_counter += 1
        insns = _lognormal_insns(
            rng, config.unit_insns * work_multiplier, config.unit_insns_cv
        )
        serial_insns = int(insns * config.serialized_fraction)
        parallel_insns = insns - serial_insns
        intensity = memory_multiplier * phase_mod
        if serial_insns > 0:
            actions.append(Acquire(lock_id=_GLOBAL_LOCK))
            actions.append(
                Run(_memory_segment(config, rng, dram, serial_insns, intensity))
            )
            actions.append(Release(lock_id=_GLOBAL_LOCK))
        if parallel_insns > 0:
            actions.append(
                Run(_memory_segment(config, rng, dram, parallel_insns, intensity))
            )
        if config.cs_probability and rng.random() < config.cs_probability:
            lock = _CS_LOCK_BASE + int(rng.integers(0, config.n_locks))
            actions.append(Acquire(lock_id=lock))
            actions.append(
                Run(ComputeSegment(insns=config.cs_insns, cpi=config.cpi))
            )
            actions.append(Release(lock_id=lock))
        if (
            config.alloc_bytes_per_unit
            and (unit + 1) % config.alloc_every == 0
        ):
            batch = config.alloc_bytes_per_unit * config.alloc_every
            n_bytes = int(batch * (0.5 + rng.random()) * phase_mod)
            n_bytes = max(1024, min(n_bytes, (config.nursery_mb << 20) // 4))
            actions.append(Allocate(n_bytes=n_bytes))
    # Make every thread arrive at all barriers it announced (threads all
    # generate the same barrier schedule because periods are unit-indexed).
    return ThreadProgram(name=f"{config.name}-worker-{t}", actions=tuple(actions))


def _lognormal_insns(rng: np.random.Generator, mean: float, cv: float) -> int:
    """Draw a unit's instruction count with the given mean and variation."""
    if cv <= 0:
        return max(100, int(mean))
    sigma = float(np.sqrt(np.log(1.0 + cv * cv)))
    mu = float(np.log(mean) - 0.5 * sigma * sigma)
    return max(100, int(rng.lognormal(mu, sigma)))


def _memory_segment(
    config: SyntheticWorkloadConfig,
    rng: np.random.Generator,
    dram: DramModel,
    insns: int,
    memory_multiplier: float = 1.0,
) -> MemorySegment:
    """A unit's main segment: compute plus sampled LLC-miss clusters."""
    expected = config.clusters_per_kinsn * memory_multiplier * insns / 1000.0
    n_clusters = int(rng.poisson(expected)) if expected > 0 else 0
    if n_clusters == 0:
        return MemorySegment.from_clusters(insns=insns, cpi=config.cpi)
    depths = np.maximum(
        rng.geometric(1.0 / config.chain_depth_mean, n_clusters), 1
    )
    chains = dram.sample_chain_latencies(rng, depths, config.chain_locality)
    return MemorySegment(
        insns=insns,
        cpi=config.cpi,
        chain_ns=chains,
        leading_total_ns=float((chains / depths).sum()),
    )
