"""Microarchitecture substrate: cores, caches, DRAM, store queue, counters.

This package plays the role Sniper plays in the paper: it provides the
timing model whose behaviour the DVFS predictors try to predict. The model
is *segment level* rather than cycle level — work arrives as segments
(compute, memory phases with LLC-miss clusters, store bursts) and the core
model converts each segment into wall-clock time at a given frequency while
maintaining the performance counters the predictors read:

* CRIT's accumulated critical-path memory latency,
* the leading-loads latency,
* the stall-time counter,
* the paper's proposed store-queue-full counter (Section III.E).
"""

from repro.arch.cache import Cache, CacheConfig
from repro.arch.clusters import (
    ClusterDvfs,
    ClusterSpec,
    ClusterTopology,
    big_little,
    homogeneous,
)
from repro.arch.core import CoreModel, SegmentTiming
from repro.arch.counters import CounterSet
from repro.arch.dram import DramConfig, DramModel
from repro.arch.frequency import DvfsDomain
from repro.arch.hierarchy import CacheHierarchy, MissProfile
from repro.arch.specs import MachineSpec, haswell_i7_4770k
from repro.arch.storequeue import StoreQueueConfig, StoreQueueModel, StoreBurstTiming

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "ClusterDvfs",
    "ClusterSpec",
    "ClusterTopology",
    "CoreModel",
    "CounterSet",
    "DramConfig",
    "DramModel",
    "DvfsDomain",
    "MachineSpec",
    "MissProfile",
    "SegmentTiming",
    "StoreBurstTiming",
    "StoreQueueConfig",
    "StoreQueueModel",
    "big_little",
    "haswell_i7_4770k",
    "homogeneous",
]
