"""Per-core performance counters read by the DVFS predictors.

The predictors never see the simulator's ground truth; they see only what a
real implementation would expose (Section III.E):

* ``crit_ns`` — CRIT's accumulated dependent-miss critical-path latency,
* ``leading_ns`` — the leading-loads accumulated latency,
* ``stall_ns`` — commit-stall time (the classic stall-time counter),
* ``sqfull_ns`` — the paper's proposed store-queue-full counter,
* ``active_ns`` — wall-clock time the thread was running on a core,
* ``insns`` / ``stores`` — retired instruction and store counts.

Counters are plain additive records: the simulator increments them as
segments complete, and the trace layer snapshots them at epoch and interval
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Counter field names, in declaration order (used by tests and reports).
COUNTER_FIELDS = (
    "active_ns",
    "crit_ns",
    "leading_ns",
    "stall_ns",
    "sqfull_ns",
    "insns",
    "stores",
)


@dataclass(slots=True)
class CounterSet:
    """Additive bundle of one thread's (or core's) performance counters.

    The arithmetic methods spell fields out explicitly instead of using
    ``dataclasses.fields`` — counter updates sit on the simulator's hottest
    path (one per completed segment, several per trace event).
    """

    active_ns: float = 0.0
    crit_ns: float = 0.0
    leading_ns: float = 0.0
    stall_ns: float = 0.0
    sqfull_ns: float = 0.0
    insns: int = 0
    stores: int = 0

    def copy(self) -> "CounterSet":
        """Return an independent copy."""
        return CounterSet(
            self.active_ns,
            self.crit_ns,
            self.leading_ns,
            self.stall_ns,
            self.sqfull_ns,
            self.insns,
            self.stores,
        )

    def add(self, other: "CounterSet") -> None:
        """Accumulate ``other`` into this counter set in place."""
        self.active_ns += other.active_ns
        self.crit_ns += other.crit_ns
        self.leading_ns += other.leading_ns
        self.stall_ns += other.stall_ns
        self.sqfull_ns += other.sqfull_ns
        self.insns += other.insns
        self.stores += other.stores

    def __add__(self, other: "CounterSet") -> "CounterSet":
        result = self.copy()
        result.add(other)
        return result

    def delta_since(self, snapshot: "CounterSet") -> "CounterSet":
        """Counters accumulated since ``snapshot`` was taken.

        All counters are monotonically non-decreasing, so every component of
        the result is non-negative for a genuine earlier snapshot.
        """
        return CounterSet(
            self.active_ns - snapshot.active_ns,
            self.crit_ns - snapshot.crit_ns,
            self.leading_ns - snapshot.leading_ns,
            self.stall_ns - snapshot.stall_ns,
            self.sqfull_ns - snapshot.sqfull_ns,
            self.insns - snapshot.insns,
            self.stores - snapshot.stores,
        )

    def is_zero(self) -> bool:
        """True if every counter is exactly zero."""
        return not (
            self.active_ns
            or self.crit_ns
            or self.leading_ns
            or self.stall_ns
            or self.sqfull_ns
            or self.insns
            or self.stores
        )
