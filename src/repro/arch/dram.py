"""Variable-latency DRAM model.

CRIT exists because real memory systems serve requests with *variable*
latency — row-buffer hits are fast, row conflicts are slow, and queueing at
the memory controller adds more variance (Section II.A). This module models
a multi-bank DRAM with an open-page policy and a small queueing component,
so that the load-miss chains fed to the predictors carry realistic,
non-uniform latencies.

DRAM latency is expressed in nanoseconds and is *independent of core
frequency*: this is the physical fact the whole scaling/non-scaling
decomposition rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class DramConfig:
    """Timing and geometry parameters of the memory system."""

    n_banks: int = 8
    #: Latency of a row-buffer hit (already-open row), controller to data.
    row_hit_ns: float = 32.0
    #: Latency when the bank's row buffer is empty (closed row).
    row_miss_ns: float = 52.0
    #: Latency when another row is open and must be written back first.
    row_conflict_ns: float = 72.0
    #: Extra queueing delay per in-flight request ahead of this one.
    queue_ns_per_request: float = 6.0
    #: Rows per bank used for the synthetic address mapping.
    rows_per_bank: int = 4096
    #: Bytes per DRAM column burst (one cache line).
    line_bytes: int = 64
    #: Sustainable per-core drain interval for an isolated cache line of
    #: store traffic (bandwidth-bound, used by the store-queue model).
    store_line_drain_ns: float = 12.0
    #: Relative DRAM latency increase per GHz of core frequency above
    #: 1 GHz: faster cores issue misses at a higher rate, deepening the
    #: controller queues. This is *actual* machine behaviour the predictors
    #: cannot observe from base-frequency counters — one of the honest
    #: residual error sources of every model, including DEP+BURST.
    queue_freq_sensitivity_per_ghz: float = 0.025

    def __post_init__(self) -> None:
        check_positive("n_banks", self.n_banks)
        check_positive("row_hit_ns", self.row_hit_ns)
        check_positive("row_miss_ns", self.row_miss_ns)
        check_positive("row_conflict_ns", self.row_conflict_ns)
        check_non_negative("queue_ns_per_request", self.queue_ns_per_request)
        check_positive("rows_per_bank", self.rows_per_bank)
        check_positive("line_bytes", self.line_bytes)
        check_positive("store_line_drain_ns", self.store_line_drain_ns)


class DramModel:
    """Stateful open-page DRAM: maps addresses to banks/rows, tracks open rows.

    The model is deterministic given the sequence of accessed line addresses,
    which lets workload builders pre-draw per-access latencies once and reuse
    them for simulations at every frequency (the latencies must not change
    with core frequency).
    """

    def __init__(self, config: Optional[DramConfig] = None) -> None:
        self.config = config or DramConfig()
        self._open_rows: List[Optional[int]] = [None] * self.config.n_banks
        self._pending: int = 0

    def reset(self) -> None:
        """Close all row buffers and clear the controller queue."""
        self._open_rows = [None] * self.config.n_banks
        self._pending = 0

    def _bank_and_row(self, line_addr: int) -> tuple:
        bank = line_addr % self.config.n_banks
        row = (line_addr // self.config.n_banks) % self.config.rows_per_bank
        return bank, row

    def access(self, line_addr: int) -> float:
        """Serve one cache-line read; return its latency in nanoseconds.

        Updates the open-row state so subsequent same-row accesses hit the
        row buffer.
        """
        cfg = self.config
        bank, row = self._bank_and_row(line_addr)
        open_row = self._open_rows[bank]
        if open_row == row:
            latency = cfg.row_hit_ns
        elif open_row is None:
            latency = cfg.row_miss_ns
        else:
            latency = cfg.row_conflict_ns
        self._open_rows[bank] = row
        latency += self._pending * cfg.queue_ns_per_request
        return latency

    def begin_burst(self, in_flight: int) -> None:
        """Mark ``in_flight`` other requests as queued ahead (MLP pressure)."""
        check_non_negative("in_flight", in_flight)
        self._pending = int(in_flight)

    def end_burst(self) -> None:
        """Clear queueing pressure after a burst of parallel requests."""
        self._pending = 0

    def sample_chain_latencies(
        self,
        rng: np.random.Generator,
        depths: np.ndarray,
        locality: float = 0.5,
    ) -> np.ndarray:
        """Draw total latencies for many dependent chains at once (fast path).

        Statistical, *stateless* counterpart of :meth:`sample_chain_latency`
        used by bulk workload builders: each access in a chain is a
        row-buffer hit with probability ``locality`` and otherwise a
        row miss or row conflict (3:5 split, matching what the stateful
        walk converges to for scattered traffic), plus an exponential
        controller-queueing term with mean ``queue_ns_per_request``.

        ``depths`` is an integer array (one chain depth per cluster);
        returns one total chain latency per cluster. Consumes ``rng``
        deterministically.
        """
        depths = np.asarray(depths, dtype=np.int64)
        if depths.size == 0:
            return np.zeros(0, dtype=np.float64)
        if depths.min() <= 0:
            raise ValueError("chain depths must be positive")
        cfg = self.config
        total = int(depths.sum())
        draw = rng.random(total)
        p_miss = locality + (1.0 - locality) * 0.375
        lat = np.where(
            draw < locality,
            cfg.row_hit_ns,
            np.where(draw < p_miss, cfg.row_miss_ns, cfg.row_conflict_ns),
        )
        if cfg.queue_ns_per_request > 0:
            lat = lat + rng.exponential(cfg.queue_ns_per_request, total)
        # Sum per chain.
        boundaries = np.zeros(depths.size, dtype=np.int64)
        np.cumsum(depths[:-1], out=boundaries[1:])
        return np.add.reduceat(lat, boundaries)

    def sample_chain_latency(
        self, rng: np.random.Generator, depth: int, locality: float = 0.5
    ) -> float:
        """Draw the total latency of a dependent chain of ``depth`` misses.

        ``locality`` is the probability that consecutive chain accesses land
        in the same row (a pointer chase through a freshly-allocated nursery
        has high locality; a scattered object graph has low locality).
        Used by workload builders; consumes ``rng`` deterministically.
        """
        check_positive("depth", depth)
        total = 0.0
        prev_line: Optional[int] = None
        for _ in range(depth):
            if prev_line is not None and rng.random() < locality:
                line = prev_line + 1
            else:
                line = int(rng.integers(0, self.config.n_banks * self.config.rows_per_bank * 8))
            total += self.access(line)
            prev_line = line
        return total
