"""Out-of-order core timing model (segment level).

This is the heart of the substrate: it converts a frequency-independent
:class:`~repro.arch.segments.Segment` into wall-clock time at a given
frequency, and produces the performance-counter increments a real core would
expose. The model captures the three DVFS-relevant mechanisms:

**Compute scales.** ``insns * cpi / f`` nanoseconds.

**Memory does not — but overlap does.** An LLC-miss cluster's dependent
chain takes ``chain_ns`` regardless of frequency. The out-of-order window
executes independent instructions underneath the chain; the amount of work
it can hide is bounded by the ROB (``rob_hide_insns`` instructions, i.e.
``rob_hide_insns * cpi / f`` nanoseconds — *this* part scales). Hence a
cluster's contribution to wall time is ``max(0, chain_ns - hide_ns(f))``
and the hidden instructions are not charged again to compute time. When the
chain is longer than the window at every frequency of interest, CRIT's
decomposition (scaling = wall - chain, non-scaling = chain) is exact; for
borderline clusters it drifts — reproducing CRIT's small residual error on
sequential code.

**Store bursts throttle to the drain rate.** Delegated to the store-queue
fluid model; the SQ-full time is real wall time that CRIT does not observe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import SimulationError
from repro.arch.counters import CounterSet
from repro.arch.segments import (
    ComputeSegment,
    MemorySegment,
    Segment,
    StoreBurstSegment,
)
from repro.arch.specs import MachineSpec
from repro.arch.storequeue import StoreQueueModel


@dataclass(frozen=True)
class SegmentTiming:
    """Result of executing one segment at one frequency."""

    #: Wall-clock duration of the segment, ns.
    wall_ns: float
    #: Counter increments a real core would have recorded.
    counters: CounterSet

    def __post_init__(self) -> None:
        if self.wall_ns < 0:
            raise SimulationError(f"negative segment wall time {self.wall_ns}")


class CoreModel:
    """Timing model of one out-of-order core at an adjustable frequency."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self._sq_model = StoreQueueModel(
            spec.store_queue, spec.core.store_issue_per_cycle
        )
        self._rob_hide_insns = int(spec.core.rob_entries * spec.core.rob_hide_fraction)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def time_segment(self, segment: Segment, freq_ghz: float) -> SegmentTiming:
        """Execute ``segment`` at ``freq_ghz``; return timing + counters."""
        if isinstance(segment, ComputeSegment):
            return self.time_compute(segment, freq_ghz)
        if isinstance(segment, MemorySegment):
            return self.time_memory(segment, freq_ghz)
        if isinstance(segment, StoreBurstSegment):
            return self.time_store_burst(segment, freq_ghz)
        raise SimulationError(f"unknown segment type: {segment!r}")

    # ------------------------------------------------------------------
    # Segment kinds
    # ------------------------------------------------------------------

    def time_compute(self, segment: ComputeSegment, freq_ghz: float) -> SegmentTiming:
        """Pure pipeline work: wall time is cycles divided by frequency."""
        wall_ns = segment.insns * segment.cpi / freq_ghz
        counters = CounterSet(active_ns=wall_ns, insns=segment.insns)
        return SegmentTiming(wall_ns=wall_ns, counters=counters)

    def time_memory(self, segment: MemorySegment, freq_ghz: float) -> SegmentTiming:
        """Compute punctuated by LLC-miss clusters with ROB-bounded overlap."""
        compute_ns = segment.insns * segment.cpi / freq_ghz
        # Faster cores put more pressure on the memory controller: the
        # *served* chain latency grows mildly with frequency, while CRIT's
        # counter naturally records the latency at the measured frequency.
        queue_factor = 1.0 + self.spec.dram.queue_freq_sensitivity_per_ghz * (
            freq_ghz - 1.0
        )
        total_chain_ns = segment.total_chain_ns * queue_factor
        if segment.n_clusters:
            hide_ns = self._rob_hide_insns * segment.cpi / freq_ghz
            commit_under_ns = (
                self.spec.core.commit_under_miss_insns * segment.cpi / freq_ghz
            )
            exposed = np.maximum(segment.chain_ns * queue_factor - hide_ns, 0.0)
            exposed_sum = float(exposed.sum())
            # Compute hidden underneath chains is not paid again, bounded by
            # the compute actually available.
            hidden_compute = min(total_chain_ns - exposed_sum, compute_ns)
            # The stall-time counter only sees cycles with zero commit.
            stall_ns = float(np.maximum(exposed - commit_under_ns, 0.0).sum())
            wall_ns = compute_ns - hidden_compute + total_chain_ns
        else:
            stall_ns = 0.0
            wall_ns = compute_ns
        counters = CounterSet(
            active_ns=wall_ns,
            # CRIT tracks every dependent chain through DRAM in full;
            # leading loads charges one representative miss per cluster.
            # Counters record latencies as served at *this* frequency.
            crit_ns=total_chain_ns,
            leading_ns=segment.leading_total_ns * queue_factor,
            stall_ns=stall_ns,
            insns=segment.insns,
        )
        return SegmentTiming(wall_ns=wall_ns, counters=counters)

    def time_store_burst(
        self, segment: StoreBurstSegment, freq_ghz: float
    ) -> SegmentTiming:
        """A burst of store misses, throttled by the store queue when full.

        The SQ-full time is recorded in the new counter the paper proposes;
        CRIT's counter is untouched (stores are off CRIT's critical path) —
        that gap is what distinguishes the +BURST predictors.
        """
        timing = self._sq_model.burst(
            segment.n_stores, segment.drain_ns_per_store, freq_ghz
        )
        counters = CounterSet(
            active_ns=timing.wall_ns,
            sqfull_ns=timing.sq_full_ns,
            insns=segment.n_stores,
            stores=segment.n_stores,
        )
        return SegmentTiming(wall_ns=timing.wall_ns, counters=counters)
