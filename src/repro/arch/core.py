"""Out-of-order core timing model (segment level).

This is the heart of the substrate: it converts a frequency-independent
:class:`~repro.arch.segments.Segment` into wall-clock time at a given
frequency, and produces the performance-counter increments a real core would
expose. The model captures the three DVFS-relevant mechanisms:

**Compute scales.** ``insns * cpi / f`` nanoseconds.

**Memory does not — but overlap does.** An LLC-miss cluster's dependent
chain takes ``chain_ns`` regardless of frequency. The out-of-order window
executes independent instructions underneath the chain; the amount of work
it can hide is bounded by the ROB (``rob_hide_insns`` instructions, i.e.
``rob_hide_insns * cpi / f`` nanoseconds — *this* part scales). Hence a
cluster's contribution to wall time is ``max(0, chain_ns - hide_ns(f))``
and the hidden instructions are not charged again to compute time. When the
chain is longer than the window at every frequency of interest, CRIT's
decomposition (scaling = wall - chain, non-scaling = chain) is exact; for
borderline clusters it drifts — reproducing CRIT's small residual error on
sequential code.

**Store bursts throttle to the drain rate.** Delegated to the store-queue
fluid model; the SQ-full time is real wall time that CRIT does not observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.common.errors import SimulationError
from repro.arch.counters import CounterSet
from repro.arch.segments import (
    ComputeSegment,
    MemorySegment,
    Segment,
    SegmentBatch,
    StoreBurstSegment,
)
from repro.arch.specs import MachineSpec
from repro.arch.storequeue import StoreQueueModel


@dataclass(frozen=True)
class SegmentTiming:
    """Result of executing one segment at one frequency."""

    #: Wall-clock duration of the segment, ns.
    wall_ns: float
    #: Counter increments a real core would have recorded.
    counters: CounterSet

    def __post_init__(self) -> None:
        if self.wall_ns < 0:
            raise SimulationError(f"negative segment wall time {self.wall_ns}")


@dataclass(frozen=True)
class BatchTiming:
    """Result of executing a :class:`SegmentBatch` at one frequency.

    ``walls`` and ``counters`` are positional: entry ``i`` times segment
    ``i`` of the batch and is bit-identical to what
    :meth:`CoreModel.time_segment` would have produced for it.
    """

    walls: List[float]
    counters: List[CounterSet]


class CoreModel:
    """Timing model of one out-of-order core at an adjustable frequency."""

    #: Cluster elements per chunk of the multi-frequency memory pass.
    #: Chunks are cut at segment boundaries near this size so the
    #: ``(n_freqs x chunk)`` working buffers stay cache-resident while a
    #: chunk's cluster latencies are reused across every frequency.
    _MULTI_CHUNK = 32_768

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self._sq_model = StoreQueueModel(
            spec.store_queue, spec.core.store_issue_per_cycle
        )
        self._rob_hide_insns = int(spec.core.rob_entries * spec.core.rob_hide_fraction)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def time_segment(self, segment: Segment, freq_ghz: float) -> SegmentTiming:
        """Execute ``segment`` at ``freq_ghz``; return timing + counters."""
        if isinstance(segment, ComputeSegment):
            return self.time_compute(segment, freq_ghz)
        if isinstance(segment, MemorySegment):
            return self.time_memory(segment, freq_ghz)
        if isinstance(segment, StoreBurstSegment):
            return self.time_store_burst(segment, freq_ghz)
        raise SimulationError(f"unknown segment type: {segment!r}")

    # ------------------------------------------------------------------
    # Segment kinds
    # ------------------------------------------------------------------

    def time_compute(self, segment: ComputeSegment, freq_ghz: float) -> SegmentTiming:
        """Pure pipeline work: wall time is cycles divided by frequency."""
        wall_ns = segment.insns * segment.cpi / freq_ghz
        counters = CounterSet(active_ns=wall_ns, insns=segment.insns)
        return SegmentTiming(wall_ns=wall_ns, counters=counters)

    def queue_factor(self, freq_ghz: float) -> float:
        """Served-latency inflation at ``freq_ghz``.

        Faster cores put more pressure on the memory controller: the
        *served* chain latency grows mildly with frequency, while CRIT's
        counter naturally records the latency at the measured frequency.
        Shared by the scalar and batch entry points so both inflate
        chains with the identical expression.
        """
        return 1.0 + self.spec.dram.queue_freq_sensitivity_per_ghz * (
            freq_ghz - 1.0
        )

    def time_memory(self, segment: MemorySegment, freq_ghz: float) -> SegmentTiming:
        """Compute punctuated by LLC-miss clusters with ROB-bounded overlap."""
        compute_ns = segment.insns * segment.cpi / freq_ghz
        queue_factor = self.queue_factor(freq_ghz)
        total_chain_ns = segment.total_chain_ns * queue_factor
        if segment.n_clusters:
            hide_ns = self._rob_hide_insns * segment.cpi / freq_ghz
            commit_under_ns = (
                self.spec.core.commit_under_miss_insns * segment.cpi / freq_ghz
            )
            exposed = np.maximum(segment.chain_ns * queue_factor - hide_ns, 0.0)
            exposed_sum = float(exposed.sum())
            # Compute hidden underneath chains is not paid again, bounded by
            # the compute actually available.
            hidden_compute = min(total_chain_ns - exposed_sum, compute_ns)
            # The stall-time counter only sees cycles with zero commit.
            stall_ns = float(np.maximum(exposed - commit_under_ns, 0.0).sum())
            wall_ns = compute_ns - hidden_compute + total_chain_ns
        else:
            stall_ns = 0.0
            wall_ns = compute_ns
        counters = CounterSet(
            active_ns=wall_ns,
            # CRIT tracks every dependent chain through DRAM in full;
            # leading loads charges one representative miss per cluster.
            # Counters record latencies as served at *this* frequency.
            crit_ns=total_chain_ns,
            leading_ns=segment.leading_total_ns * queue_factor,
            stall_ns=stall_ns,
            insns=segment.insns,
        )
        return SegmentTiming(wall_ns=wall_ns, counters=counters)

    def time_store_burst(
        self, segment: StoreBurstSegment, freq_ghz: float
    ) -> SegmentTiming:
        """A burst of store misses, throttled by the store queue when full.

        The SQ-full time is recorded in the new counter the paper proposes;
        CRIT's counter is untouched (stores are off CRIT's critical path) —
        that gap is what distinguishes the +BURST predictors.
        """
        timing = self._sq_model.burst(
            segment.n_stores, segment.drain_ns_per_store, freq_ghz
        )
        counters = CounterSet(
            active_ns=timing.wall_ns,
            sqfull_ns=timing.sq_full_ns,
            insns=segment.n_stores,
            stores=segment.n_stores,
        )
        return SegmentTiming(wall_ns=timing.wall_ns, counters=counters)

    # ------------------------------------------------------------------
    # Batched timing (the merged-plan hot path)
    # ------------------------------------------------------------------

    def time_batch(self, batch: SegmentBatch, freq_ghz: float) -> BatchTiming:
        """Time every segment of ``batch`` at ``freq_ghz`` in one pass.

        Bit-compatibility contract: each wall time and counter value equals
        the scalar :meth:`time_segment` result for the same segment — the
        vectorized expressions perform the identical IEEE-754 operations
        elementwise, and per-segment cluster reductions run over contiguous
        slices of the concatenated cluster array (the same pairwise
        summation NumPy applies to the standalone array).
        """
        n = batch.n
        walls: List[float] = [0.0] * n
        counters: List[CounterSet] = [None] * n  # type: ignore[list-item]

        if batch.c_pos:
            wall_arr = batch.c_insns_f * batch.c_cpi / freq_ghz
            for pos, wall, insns in zip(
                batch.c_pos, wall_arr.tolist(), batch.c_insns
            ):
                walls[pos] = wall
                counters[pos] = CounterSet(wall, 0.0, 0.0, 0.0, 0.0, insns, 0)

        if batch.s_pos:
            produce_rate = self._sq_model.store_issue_per_cycle * freq_ghz
            entries = self._sq_model.config.entries
            with np.errstate(all="ignore"):
                drain_rate = 1.0 / batch.s_drain
                issue = batch.s_stores_f / produce_rate
                fill = entries / (produce_rate - drain_rate)
                issued_at_fill = produce_rate * fill
                remaining = batch.s_stores_f - issued_at_fill
                full = remaining * batch.s_drain
                stalled = (drain_rate < produce_rate) & (fill < issue)
                wall_arr = np.where(stalled, fill + full, issue)
                sq_full_arr = np.where(stalled, full, 0.0)
            for pos, wall, sq_full, n_stores in zip(
                batch.s_pos, wall_arr.tolist(), sq_full_arr.tolist(),
                batch.s_stores,
            ):
                walls[pos] = wall
                counters[pos] = CounterSet(
                    wall, 0.0, 0.0, 0.0, sq_full, n_stores, n_stores
                )

        if batch.m_pos:
            queue_factor = self.queue_factor(freq_ghz)
            compute_arr = batch.m_insns_f * batch.m_cpi / freq_ghz
            total_chain_arr = batch.m_total_chain * queue_factor
            leading_arr = batch.m_leading * queue_factor
            hide_arr = self._rob_hide_insns * batch.m_cpi / freq_ghz
            commit_under_arr = (
                self.spec.core.commit_under_miss_insns * batch.m_cpi / freq_ghz
            )
            counts = batch.m_cluster_counts
            offsets = batch.m_cluster_offsets
            exposed_all = np.maximum(
                batch.m_clusters * queue_factor - np.repeat(hide_arr, counts),
                0.0,
            )
            stall_all = np.maximum(
                exposed_all - np.repeat(commit_under_arr, counts), 0.0
            )
            n_m = len(batch.m_pos)
            exposed_sums = np.zeros(n_m)
            stall_sums = np.zeros(n_m)
            if exposed_all.size:
                # Per-segment cluster sums. ndarray.sum() accumulates
                # strictly sequentially below NumPy's pairwise block size
                # of 8, so small groups (the overwhelming majority) are
                # summed with one vectorized gather-add per cluster rank —
                # the identical addition order. Groups of >= 8 clusters
                # take the contiguous slice sum (same pairwise kernel as
                # the scalar path).
                lo_arr = offsets[:-1]
                small_idx = np.nonzero((counts > 0) & (counts < 8))[0]
                if small_idx.size:
                    base = lo_arr[small_idx]
                    cnt = counts[small_idx]
                    for j in range(int(cnt.max())):
                        in_group = cnt > j
                        gi = small_idx[in_group]
                        pos = base[in_group] + j
                        exposed_sums[gi] += exposed_all[pos]
                        stall_sums[gi] += stall_all[pos]
                for k in np.nonzero(counts >= 8)[0].tolist():
                    lo = offsets[k]
                    hi = offsets[k + 1]
                    exposed_sums[k] = exposed_all[lo:hi].sum()
                    stall_sums[k] = stall_all[lo:hi].sum()
            clustered = counts > 0
            hidden = np.minimum(total_chain_arr - exposed_sums, compute_arr)
            wall_arr = np.where(
                clustered, compute_arr - hidden + total_chain_arr, compute_arr
            )
            stall_arr = np.where(clustered, stall_sums, 0.0)
            for pos, wall, total, leading, stall, insns in zip(
                batch.m_pos, wall_arr.tolist(), total_chain_arr.tolist(),
                leading_arr.tolist(), stall_arr.tolist(), batch.m_insns,
            ):
                walls[pos] = wall
                counters[pos] = CounterSet(
                    wall, total, leading, stall, 0.0, insns, 0
                )

        return BatchTiming(walls=walls, counters=counters)

    def time_batch_multi(
        self, batch: SegmentBatch, freqs_ghz: Sequence[float]
    ) -> List[BatchTiming]:
        """Time every segment of ``batch`` at every frequency in one pass.

        Returns one :class:`BatchTiming` per entry of ``freqs_ghz``, each
        bit-identical to ``time_batch(batch, f)`` — and therefore to the
        scalar :meth:`time_segment`. The win over calling ``time_batch``
        per frequency is cache locality: the concatenated cluster array
        (the dominant traffic for memory-heavy programs) is walked in
        chunks of ~:data:`_MULTI_CHUNK` elements, and each chunk is timed
        at *all* frequencies while it is cache-hot, instead of streaming
        the full array from DRAM once per frequency.

        Bit-compatibility rests on two facts the tests pin: elementwise
        ufunc chains produce the identical IEEE-754 value per element no
        matter how the array is chunked, and a contiguous row slice of a
        2-D buffer sums (pairwise) to the same bits as the standalone 1-D
        slice. Chunks are cut only at segment boundaries, so per-segment
        reductions always see whole groups.
        """
        freqs = [float(f) for f in freqs_ghz]
        nf = len(freqs)
        results = [
            BatchTiming(walls=[0.0] * batch.n, counters=[None] * batch.n)
            for _ in freqs
        ]

        if batch.c_pos:
            # time_batch evaluates (insns_f * cpi) / f left to right; the
            # frequency-invariant product is hoisted, the division stays
            # per frequency — the same two operations per element.
            prod = batch.c_insns_f * batch.c_cpi
            for fi, freq_ghz in enumerate(freqs):
                wall_arr = prod / freq_ghz
                walls = results[fi].walls
                counters = results[fi].counters
                for pos, wall, insns in zip(
                    batch.c_pos, wall_arr.tolist(), batch.c_insns
                ):
                    walls[pos] = wall
                    counters[pos] = CounterSet(wall, 0.0, 0.0, 0.0, 0.0, insns, 0)

        if batch.s_pos:
            # The store-queue fluid expressions depend on frequency through
            # produce_rate; the block is simply repeated per frequency
            # (store segments are rare — no cache-blocking needed).
            entries = self._sq_model.config.entries
            for fi, freq_ghz in enumerate(freqs):
                produce_rate = self._sq_model.store_issue_per_cycle * freq_ghz
                with np.errstate(all="ignore"):
                    drain_rate = 1.0 / batch.s_drain
                    issue = batch.s_stores_f / produce_rate
                    fill = entries / (produce_rate - drain_rate)
                    issued_at_fill = produce_rate * fill
                    remaining = batch.s_stores_f - issued_at_fill
                    full = remaining * batch.s_drain
                    stalled = (drain_rate < produce_rate) & (fill < issue)
                    wall_arr = np.where(stalled, fill + full, issue)
                    sq_full_arr = np.where(stalled, full, 0.0)
                walls = results[fi].walls
                counters = results[fi].counters
                for pos, wall, sq_full, n_stores in zip(
                    batch.s_pos, wall_arr.tolist(), sq_full_arr.tolist(),
                    batch.s_stores,
                ):
                    walls[pos] = wall
                    counters[pos] = CounterSet(
                        wall, 0.0, 0.0, 0.0, sq_full, n_stores, n_stores
                    )

        if batch.m_pos:
            counts = batch.m_cluster_counts
            offsets = batch.m_cluster_offsets
            n_m = len(batch.m_pos)
            queue_factors = [self.queue_factor(f) for f in freqs]
            compute_num = batch.m_insns_f * batch.m_cpi
            hide_num = self._rob_hide_insns * batch.m_cpi
            commit_num = self.spec.core.commit_under_miss_insns * batch.m_cpi
            exposed_sums = np.zeros((nf, n_m))
            stall_sums = np.zeros((nf, n_m))
            if int(offsets[-1]):
                # repeat(a * b) / f applies the same scalar operations per
                # element as repeat(a * b / f): hoist the repeat, divide
                # inside the frequency loop.
                hide_rep = np.repeat(hide_num, counts)
                commit_rep = np.repeat(commit_num, counts)
                clusters = batch.m_clusters
                lo_seg = 0
                while lo_seg < n_m:
                    target = int(offsets[lo_seg]) + self._MULTI_CHUNK
                    hi_seg = int(np.searchsorted(offsets, target, side="right")) - 1
                    hi_seg = min(max(hi_seg, lo_seg + 1), n_m)
                    clo = int(offsets[lo_seg])
                    chi = int(offsets[hi_seg])
                    if clo == chi:  # a run of cluster-free segments
                        lo_seg = hi_seg
                        continue
                    chunk = clusters[clo:chi]
                    chunk_hide = hide_rep[clo:chi]
                    chunk_commit = commit_rep[clo:chi]
                    clen = chi - clo
                    exposed = np.empty((nf, clen))
                    stall = np.empty((nf, clen))
                    scratch = np.empty(clen)
                    for fi, freq_ghz in enumerate(freqs):
                        row_e = exposed[fi]
                        row_s = stall[fi]
                        np.multiply(chunk, queue_factors[fi], out=row_e)
                        np.divide(chunk_hide, freq_ghz, out=scratch)
                        np.subtract(row_e, scratch, out=row_e)
                        np.maximum(row_e, 0.0, out=row_e)
                        np.divide(chunk_commit, freq_ghz, out=scratch)
                        np.subtract(row_e, scratch, out=row_s)
                        np.maximum(row_s, 0.0, out=row_s)
                    # Per-segment reductions, all frequencies at once; the
                    # small/large split mirrors time_batch exactly (rank-j
                    # gather adds below 8 clusters, contiguous slice sums
                    # at or above — the identical addition orders).
                    cnt = counts[lo_seg:hi_seg]
                    base_arr = offsets[lo_seg:hi_seg] - clo
                    small_idx = np.nonzero((cnt > 0) & (cnt < 8))[0]
                    if small_idx.size:
                        base = base_arr[small_idx]
                        small_cnt = cnt[small_idx]
                        for j in range(int(small_cnt.max())):
                            in_group = small_cnt > j
                            gi = small_idx[in_group] + lo_seg
                            pos = base[in_group] + j
                            exposed_sums[:, gi] += exposed[:, pos]
                            stall_sums[:, gi] += stall[:, pos]
                    for k in np.nonzero(cnt >= 8)[0].tolist():
                        lo = int(base_arr[k])
                        hi = lo + int(cnt[k])
                        exposed_sums[:, lo_seg + k] = exposed[:, lo:hi].sum(axis=1)
                        stall_sums[:, lo_seg + k] = stall[:, lo:hi].sum(axis=1)
                    lo_seg = hi_seg
            clustered = counts > 0
            for fi, freq_ghz in enumerate(freqs):
                queue_factor = queue_factors[fi]
                compute_arr = compute_num / freq_ghz
                total_chain_arr = batch.m_total_chain * queue_factor
                leading_arr = batch.m_leading * queue_factor
                hidden = np.minimum(total_chain_arr - exposed_sums[fi], compute_arr)
                wall_arr = np.where(
                    clustered, compute_arr - hidden + total_chain_arr, compute_arr
                )
                stall_arr = np.where(clustered, stall_sums[fi], 0.0)
                walls = results[fi].walls
                counters = results[fi].counters
                for pos, wall, total, leading, stall_v, insns in zip(
                    batch.m_pos, wall_arr.tolist(), total_chain_arr.tolist(),
                    leading_arr.tolist(), stall_arr.tolist(), batch.m_insns,
                ):
                    walls[pos] = wall
                    counters[pos] = CounterSet(
                        wall, total, leading, stall_v, 0.0, insns, 0
                    )

        return results
