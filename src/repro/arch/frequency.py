"""DVFS domains: set points, validation, transition accounting.

The paper studies chip-wide DVFS (all cores share one frequency) with
125 MHz steps between 1 and 4 GHz and a 2 µs transition cost; per-core
DVFS is explicitly left as future work (Section VII). The domain object
supports both: the default is the paper's chip-wide mode, and
``per_core=True`` gives each core its own set point (the simulator times
each segment at the frequency of the core the thread occupies).

The domain validates requested frequencies against the machine's set
points and tracks the number of transitions plus the total time lost to
them, which the energy manager charges against the running application.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.arch.specs import MachineSpec


class DvfsDomain:
    """The frequency domain(s) of the chip's cores."""

    def __init__(
        self,
        spec: MachineSpec,
        initial_freq_ghz: float = None,
        per_core: bool = False,
    ) -> None:
        self.spec = spec
        self.per_core = per_core
        self._set_points: Tuple[float, ...] = spec.frequencies()
        if initial_freq_ghz is None:
            initial_freq_ghz = spec.max_freq_ghz
        self._current = self.validate(initial_freq_ghz)
        self._core_freqs: Optional[List[float]] = (
            [self._current] * spec.n_cores if per_core else None
        )
        self.transitions = 0
        self.transition_time_ns = 0.0

    @property
    def set_points(self) -> Tuple[float, ...]:
        """All supported frequencies, ascending."""
        return self._set_points

    @property
    def current_freq_ghz(self) -> float:
        """The chip-wide frequency; in per-core mode, the fastest core's."""
        if self._core_freqs is not None:
            return max(self._core_freqs)
        return self._current

    def frequency_of(self, core: Optional[int]) -> float:
        """The frequency of ``core`` (chip frequency in chip-wide mode).

        ``core=None`` (a thread not currently placed) reads the chip-wide
        value.
        """
        if self._core_freqs is None or core is None:
            return self.current_freq_ghz
        if not 0 <= core < self.spec.n_cores:
            raise ConfigError(f"core {core} out of range")
        return self._core_freqs[core]

    def set_core_frequency(self, core: int, freq_ghz: float) -> float:
        """Per-core mode: switch one core; return its transition cost in ns."""
        if self._core_freqs is None:
            raise ConfigError(
                "set_core_frequency requires a per-core DVFS domain"
            )
        if not 0 <= core < self.spec.n_cores:
            raise ConfigError(f"core {core} out of range")
        target = self.validate(freq_ghz)
        if target == self._core_freqs[core]:
            return 0.0
        self._core_freqs[core] = target
        self.transitions += 1
        self.transition_time_ns += self.spec.dvfs_transition_ns
        return self.spec.dvfs_transition_ns

    def validate(self, freq_ghz: float) -> float:
        """Return the exact set point equal to ``freq_ghz`` or raise.

        A tolerance of 0.5 MHz absorbs float formatting noise; anything
        further from a set point is a caller bug.
        """
        for point in self._set_points:
            if abs(point - freq_ghz) < 5e-4:
                return point
        raise ConfigError(
            f"{freq_ghz} GHz is not a DVFS set point of this machine "
            f"({self._set_points[0]}..{self._set_points[-1]} GHz in "
            f"{self.spec.freq_step_ghz * 1000:.0f} MHz steps)"
        )

    def nearest(self, freq_ghz: float) -> float:
        """Return the closest supported set point to ``freq_ghz``."""
        return min(self._set_points, key=lambda point: abs(point - freq_ghz))

    def set_frequency(self, freq_ghz: float) -> float:
        """Switch the whole chip to ``freq_ghz``; return the cost in ns.

        Switching to the current frequency is free (no transition happens).
        In per-core mode this sets every core at once (one transition).
        """
        target = self.validate(freq_ghz)
        if self._core_freqs is not None:
            if all(f == target for f in self._core_freqs):
                return 0.0
            self._core_freqs = [target] * self.spec.n_cores
            self.transitions += 1
            self.transition_time_ns += self.spec.dvfs_transition_ns
            return self.spec.dvfs_transition_ns
        if target == self._current:
            return 0.0
        self._current = target
        self.transitions += 1
        self.transition_time_ns += self.spec.dvfs_transition_ns
        return self.spec.dvfs_transition_ns
