"""Timed work segments — the leaf units the core timing model executes.

A workload (see :mod:`repro.workloads`) eventually decomposes into a
per-thread sequence of three segment kinds:

* :class:`ComputeSegment` — pure pipeline work, scales with frequency;
* :class:`MemorySegment` — pipeline work punctuated by LLC-miss *clusters*,
  each a dependent chain of DRAM accesses with a pre-drawn total latency
  (frequency-invariant);
* :class:`StoreBurstSegment` — a burst of store misses (zero-initialization
  or GC copying) whose wall time is governed by the store-queue fluid model.

Segments carry all frequency-*independent* information; the core model
turns a ``(segment, frequency)`` pair into wall time plus counter
increments. Because a segment is re-timed at every simulated frequency,
:class:`MemorySegment` stores its cluster population as a NumPy array of
chain latencies (plus the pre-summed leading-load latency) rather than a
list of objects — the timing hot path is then two vectorized expressions.
:class:`MissCluster` remains as the convenient scalar construction unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.common.errors import ConfigError
from repro.common.validation import check_positive

_EMPTY_CHAINS = np.zeros(0, dtype=np.float64)
_EMPTY_CHAINS.setflags(write=False)


@dataclass(frozen=True)
class ComputeSegment:
    """A run of ``insns`` instructions at ``cpi`` cycles per instruction."""

    insns: int
    cpi: float

    def __post_init__(self) -> None:
        check_positive("insns", self.insns)
        check_positive("cpi", self.cpi)


@dataclass(frozen=True)
class MissCluster:
    """A dependent chain of ``depth`` LLC misses totalling ``chain_ns``.

    ``chain_ns`` is the accumulated latency of the chain's critical path
    through DRAM (what CRIT's counter is designed to measure); independent
    misses overlapped within the cluster do not extend it.
    """

    depth: int
    chain_ns: float

    def __post_init__(self) -> None:
        check_positive("depth", self.depth)
        check_positive("chain_ns", self.chain_ns)

    @property
    def leading_ns(self) -> float:
        """The leading-loads approximation: one representative miss latency."""
        return self.chain_ns / self.depth


@dataclass(frozen=True, eq=False)
class MemorySegment:
    """Compute work interleaved with LLC-miss clusters.

    ``chain_ns`` holds one dependent-chain latency per cluster;
    ``leading_total_ns`` is the pre-summed leading-loads contribution
    (one representative miss latency per cluster).
    """

    insns: int
    cpi: float
    chain_ns: np.ndarray
    leading_total_ns: float

    def __post_init__(self) -> None:
        check_positive("insns", self.insns)
        check_positive("cpi", self.cpi)
        chains = np.asarray(self.chain_ns, dtype=np.float64)
        if chains.ndim != 1:
            raise ConfigError("chain_ns must be a 1-D array of latencies")
        if chains.size and float(chains.min()) <= 0.0:
            raise ConfigError("all chain latencies must be positive")
        if self.leading_total_ns < 0:
            raise ConfigError("leading_total_ns must be >= 0")
        if chains.size == 0 and self.leading_total_ns != 0.0:
            raise ConfigError("leading_total_ns must be 0 with no clusters")
        chains.setflags(write=False)
        object.__setattr__(self, "chain_ns", chains)
        object.__setattr__(self, "_total_chain_ns", float(chains.sum()))

    @classmethod
    def from_clusters(
        cls, insns: int, cpi: float, clusters: Sequence[MissCluster] = ()
    ) -> "MemorySegment":
        """Build from scalar :class:`MissCluster` objects (tests, examples)."""
        if clusters:
            chains = np.array([c.chain_ns for c in clusters], dtype=np.float64)
            leading = float(sum(c.leading_ns for c in clusters))
        else:
            chains = _EMPTY_CHAINS
            leading = 0.0
        return cls(insns=insns, cpi=cpi, chain_ns=chains, leading_total_ns=leading)

    @property
    def n_clusters(self) -> int:
        """Number of LLC-miss clusters."""
        return int(self.chain_ns.size)

    @property
    def total_chain_ns(self) -> float:
        """Sum of all clusters' dependent-chain latencies (CRIT's counter)."""
        return self._total_chain_ns  # type: ignore[attr-defined]


@dataclass(frozen=True)
class StoreBurstSegment:
    """A burst of ``n_stores`` store misses draining at a memory-bound rate.

    ``drain_ns_per_store`` reflects coalescing: sequential zero-init stores
    share cache lines and drain faster per store than scattered GC-copy
    stores.
    """

    n_stores: int
    drain_ns_per_store: float

    def __post_init__(self) -> None:
        check_positive("n_stores", self.n_stores)
        check_positive("drain_ns_per_store", self.drain_ns_per_store)


Segment = Union[ComputeSegment, MemorySegment, StoreBurstSegment]


class SegmentBatch:
    """Columnar view of a run of consecutive segments, for vectorized timing.

    The discrete-event core merges runs of back-to-back segments (long
    allocation zero-init bursts, GC trace/copy chunk sequences) into one
    scheduled "plan"; this class regroups the plan's segments by kind into
    flat NumPy columns so :meth:`~repro.arch.core.CoreModel.time_batch` can
    time a whole run with a handful of array expressions instead of one
    Python dispatch per segment.

    Cluster latencies of the memory segments are concatenated into a single
    array with CSR-style ``m_cluster_offsets``; per-segment reductions are
    taken over contiguous slices so they accumulate in exactly the same
    order (NumPy pairwise summation over the same values) as the scalar
    ``time_memory`` path — batching must not perturb a single bit.
    """

    __slots__ = (
        "n",
        "c_pos", "c_insns", "c_insns_f", "c_cpi",
        "m_pos", "m_insns", "m_insns_f", "m_cpi", "m_total_chain",
        "m_leading", "m_clusters", "m_cluster_offsets", "m_cluster_counts",
        "s_pos", "s_stores", "s_stores_f", "s_drain",
    )

    def __init__(self, segments: Sequence[Segment]) -> None:
        self.n = len(segments)
        c_pos: List[int] = []
        c_insns: List[int] = []
        c_cpi: List[float] = []
        m_pos: List[int] = []
        m_insns: List[int] = []
        m_cpi: List[float] = []
        m_total: List[float] = []
        m_leading: List[float] = []
        m_chains: List[np.ndarray] = []
        s_pos: List[int] = []
        s_stores: List[int] = []
        s_drain: List[float] = []
        for pos, segment in enumerate(segments):
            kind = type(segment)
            if kind is ComputeSegment:
                c_pos.append(pos)
                c_insns.append(segment.insns)
                c_cpi.append(segment.cpi)
            elif kind is StoreBurstSegment:
                s_pos.append(pos)
                s_stores.append(segment.n_stores)
                s_drain.append(segment.drain_ns_per_store)
            elif kind is MemorySegment:
                m_pos.append(pos)
                m_insns.append(segment.insns)
                m_cpi.append(segment.cpi)
                m_total.append(segment.total_chain_ns)
                m_leading.append(segment.leading_total_ns)
                m_chains.append(segment.chain_ns)
            else:
                raise ConfigError(f"unknown segment type: {segment!r}")
        self.c_pos = c_pos
        self.c_insns = c_insns
        self.c_insns_f = np.array(c_insns, dtype=np.float64) if c_pos else None
        self.c_cpi = np.array(c_cpi, dtype=np.float64) if c_pos else None
        self.m_pos = m_pos
        self.m_insns = m_insns
        if m_pos:
            self.m_insns_f = np.array(m_insns, dtype=np.float64)
            self.m_cpi = np.array(m_cpi, dtype=np.float64)
            self.m_total_chain = np.array(m_total, dtype=np.float64)
            self.m_leading = np.array(m_leading, dtype=np.float64)
            counts = np.array([c.size for c in m_chains], dtype=np.intp)
            self.m_cluster_counts = counts
            offsets = np.zeros(len(m_chains) + 1, dtype=np.intp)
            np.cumsum(counts, out=offsets[1:])
            self.m_cluster_offsets = offsets
            self.m_clusters = (
                np.concatenate(m_chains) if int(offsets[-1]) else _EMPTY_CHAINS
            )
        else:
            self.m_insns_f = None
            self.m_cpi = None
            self.m_total_chain = None
            self.m_leading = None
            self.m_clusters = None
            self.m_cluster_offsets = None
            self.m_cluster_counts = None
        self.s_pos = s_pos
        self.s_stores = s_stores
        self.s_stores_f = np.array(s_stores, dtype=np.float64) if s_pos else None
        self.s_drain = np.array(s_drain, dtype=np.float64) if s_pos else None
