"""Set-associative cache with true-LRU replacement.

The caches are used by the workload builders to turn synthetic access
patterns into per-level miss profiles (the segment-level core model then
only needs the resulting LLC-miss cluster structure). They are faithful
set-associative LRU caches so the derived miss rates respond correctly to
working-set size, stride, and sharing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.common.validation import check_positive, check_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    #: Hit latency, in cycles of the clock domain the cache belongs to
    #: (core clock for L1/L2, uncore clock for L3 — see MachineSpec).
    latency_cycles: int

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("assoc", self.assoc)
        check_power_of_two("line_bytes", self.line_bytes)
        check_positive("latency_cycles", self.latency_cycles)
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def n_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes


class Cache:
    """One level of set-associative, true-LRU, write-allocate cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # One ordered dict per set: keys are tags, order is LRU -> MRU.
        self._sets: Dict[int, "OrderedDict[int, None]"] = {}
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        self._sets.clear()
        self.hits = 0
        self.misses = 0

    def _index_and_tag(self, addr: int) -> tuple:
        line = addr // self.config.line_bytes
        return line % self.config.n_sets, line // self.config.n_sets

    def access(self, addr: int) -> bool:
        """Access byte address ``addr``; return True on hit.

        On a miss the line is installed, evicting the LRU line of the set if
        the set is full (write-allocate for stores is the caller's policy:
        both loads and stores go through this method).
        """
        index, tag = self._index_and_tag(addr)
        lru_set = self._sets.get(index)
        if lru_set is None:
            lru_set = OrderedDict()
            self._sets[index] = lru_set
        if tag in lru_set:
            lru_set.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        lru_set[tag] = None
        if len(lru_set) > self.config.assoc:
            lru_set.popitem(last=False)
        return False

    def contains(self, addr: int) -> bool:
        """Return True if the line holding ``addr`` is resident (no update)."""
        index, tag = self._index_and_tag(addr)
        lru_set = self._sets.get(index)
        return bool(lru_set) and tag in lru_set

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate over all accesses so far (0 if no accesses)."""
        total = self.accesses
        return self.misses / total if total else 0.0
