"""Fluid model of the store queue, and the SQ-full counter (BURST's input).

Section III.D: isolated store misses are not on the critical path — the
store queue buffers them, loads bypass, and commit continues. But *bursts*
of stores (zero-initialization of fresh allocations, GC copying) fill the
store queue; once it is full and the next instruction to commit is a store,
commit stalls. The time the store queue is full does not scale with
frequency (the drain rate is memory-bound), yet CRIT attributes it to the
scaling component — that mis-attribution is exactly what the BURST term
corrects.

This module models a burst of ``n`` store-misses hitting an initially-empty
store queue of ``Q`` entries as a fluid process:

* stores are produced (issued/committed by the core) at rate
  ``r = store_issue_per_cycle * f`` stores/ns — this scales with frequency;
* stores are drained (retired by the memory hierarchy) at a fixed rate of
  one store per ``d`` ns — this does not scale.

If ``r <= 1/d`` the queue never fills and the burst is pure scaling time.
Otherwise the queue fills after ``t_fill = Q / (r - 1/d)`` ns; from then on
the core is throttled to the drain rate and the SQ-full signal is raised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import check_positive


@dataclass(frozen=True)
class StoreQueueConfig:
    """Store-queue geometry (Haswell has 42 store-buffer entries)."""

    entries: int = 42

    def __post_init__(self) -> None:
        check_positive("entries", self.entries)


@dataclass(frozen=True)
class StoreBurstTiming:
    """Timing decomposition of one store burst at one frequency.

    Attributes
    ----------
    wall_ns:
        Total wall-clock time the core spends on the burst.
    issue_ns:
        Time the burst would take if the queue never filled
        (``n / r`` — the frequency-scaling part).
    sq_full_ns:
        Time the store-queue-full signal is raised (the paper's new
        performance counter; ``wall_ns - time to fill the queue``).
    stalled:
        True if the queue filled during this burst.
    """

    wall_ns: float
    issue_ns: float
    sq_full_ns: float
    stalled: bool

    def __post_init__(self) -> None:
        if self.wall_ns + 1e-12 < self.issue_ns:
            raise ValueError(
                f"wall time {self.wall_ns} smaller than issue time {self.issue_ns}"
            )


class StoreQueueModel:
    """Closed-form fluid model of a store burst through the store queue."""

    def __init__(self, config: StoreQueueConfig, store_issue_per_cycle: float) -> None:
        check_positive("store_issue_per_cycle", store_issue_per_cycle)
        self.config = config
        self.store_issue_per_cycle = store_issue_per_cycle

    def burst(self, n_stores: int, drain_ns_per_store: float,
              freq_ghz: float) -> StoreBurstTiming:
        """Time a burst of ``n_stores`` store-misses at ``freq_ghz``.

        ``drain_ns_per_store`` is the memory-bound retire interval per store
        (coalesced sequential zero-init drains faster per store than
        scattered GC-copy stores).
        """
        check_positive("n_stores", n_stores)
        check_positive("drain_ns_per_store", drain_ns_per_store)
        check_positive("freq_ghz", freq_ghz)
        produce_rate = self.store_issue_per_cycle * freq_ghz  # stores per ns
        drain_rate = 1.0 / drain_ns_per_store
        issue_ns = n_stores / produce_rate
        if produce_rate <= drain_rate:
            # The queue never grows; the burst is pure core-speed time.
            return StoreBurstTiming(
                wall_ns=issue_ns, issue_ns=issue_ns, sq_full_ns=0.0, stalled=False
            )
        fill_ns = self.config.entries / (produce_rate - drain_rate)
        if issue_ns <= fill_ns:
            # The burst ends before the queue fills: no commit stall. The
            # residual queue occupancy drains underneath subsequent work.
            return StoreBurstTiming(
                wall_ns=issue_ns, issue_ns=issue_ns, sq_full_ns=0.0, stalled=False
            )
        # Queue fills at fill_ns; the remaining stores enter at drain rate.
        issued_at_fill = produce_rate * fill_ns
        remaining = n_stores - issued_at_fill
        full_ns = remaining * drain_ns_per_store
        wall_ns = fill_ns + full_ns
        return StoreBurstTiming(
            wall_ns=wall_ns, issue_ns=issue_ns, sq_full_ns=full_ns, stalled=True
        )
