"""Heterogeneous frequency domains: clusters of cores over one machine.

The paper's machine is homogeneous — four identical cores behind one
chip-wide DVFS domain. Modern parts group cores into *clusters* (big
cores and little cores, each cluster on its own voltage/frequency rail),
possibly fabricated at different effective technology points and fed by
an uncore whose own clock is a DVFS axis of its own ("Dim Silicon and
the Case for Improved DVFS Policies", PAPERS.md).

This module adds that axis without disturbing the timing substrate:

* :class:`ClusterSpec` — one cluster: which cores it owns, its own
  frequency ladder (a sub-range of the machine's DVFS grid), its
  technology node (:mod:`repro.energy.vftable`'s ITRS/conservative
  tables) and its uncore clock;
* :class:`ClusterTopology` — a machine's full partition into clusters,
  with validation (cores partition the machine, ladders stay on the
  machine's set-point grid) and JSON round-trips;
* :class:`ClusterDvfs` — the per-cluster frequency domains: the
  heterogeneous counterpart of :class:`~repro.arch.frequency.DvfsDomain`
  with the same ``frequency_of(core)`` surface the simulator times
  segments through, plus per-cluster transition accounting.

A single-cluster topology (:func:`homogeneous`) is the exact legacy
machine: same set points, same transition costs, same per-core
frequencies — pinned byte-identical by the hetero differential layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.validation import check_positive, require
from repro.arch.specs import MachineSpec, haswell_i7_4770k


@dataclass(frozen=True)
class ClusterSpec:
    """One frequency domain: a named group of cores with its own ladder."""

    name: str
    #: Core ids of the parent machine this cluster owns.
    cores: Tuple[int, ...]
    min_freq_ghz: float = 1.0
    max_freq_ghz: float = 4.0
    freq_step_ghz: float = 0.125
    #: Technology node of this cluster's V/f table (45/32/22/16 nm;
    #: 45 nm is the unit-scaling baseline whose table is the legacy
    #: i7-4770K curve).
    node_nm: int = 45
    #: Node scaling assumption: ``"itrs"`` or ``"cons"``.
    node_scaling: str = "itrs"
    #: Uncore clock feeding this cluster's memory path, GHz.
    uncore_freq_ghz: float = 1.5

    def __post_init__(self) -> None:
        require(bool(self.name), "cluster name must be non-empty")
        require(len(self.cores) > 0, "cluster must own at least one core")
        require(
            len(set(self.cores)) == len(self.cores),
            f"cluster {self.name!r} lists a core twice",
        )
        check_positive("min_freq_ghz", self.min_freq_ghz)
        check_positive("freq_step_ghz", self.freq_step_ghz)
        check_positive("uncore_freq_ghz", self.uncore_freq_ghz)
        require(
            self.max_freq_ghz >= self.min_freq_ghz,
            "max_freq_ghz must be >= min_freq_ghz",
        )
        if self.node_scaling not in ("itrs", "cons"):
            raise ConfigError(
                f"node_scaling must be 'itrs' or 'cons', "
                f"got {self.node_scaling!r}"
            )

    def frequencies(self) -> Tuple[float, ...]:
        """The cluster's DVFS set points, ascending (integer-step grid)."""
        steps = int(
            round((self.max_freq_ghz - self.min_freq_ghz) / self.freq_step_ghz)
        )
        return tuple(
            round(self.min_freq_ghz + i * self.freq_step_ghz, 6)
            for i in range(steps + 1)
        )

    def vf_table(self):
        """The cluster's node-scaled V/f table over its own ladder."""
        from repro.energy.vftable import NodeVfTable

        return NodeVfTable(
            node_nm=self.node_nm,
            scaling=self.node_scaling,
            min_freq_ghz=self.min_freq_ghz,
            max_freq_ghz=self.max_freq_ghz,
            freq_step_ghz=self.freq_step_ghz,
        )

    def supported_frequencies(self) -> Tuple[float, ...]:
        """Set points the node can actually power (Vth floor applied)."""
        return self.vf_table().set_points()

    def uncore_scale(self, spec: MachineSpec) -> float:
        """Non-scaling time multiplier vs. the machine's reference uncore.

        Memory/stall time is uncore-clocked: running the uncore at half
        the reference clock doubles it. A cluster at the reference uncore
        frequency scales by exactly 1.0.
        """
        return spec.uncore_freq_ghz / self.uncore_freq_ghz

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible encoding (exact round-trip via from_dict)."""
        return {
            "name": self.name,
            "cores": list(self.cores),
            "min_freq_ghz": self.min_freq_ghz,
            "max_freq_ghz": self.max_freq_ghz,
            "freq_step_ghz": self.freq_step_ghz,
            "node_nm": self.node_nm,
            "node_scaling": self.node_scaling,
            "uncore_freq_ghz": self.uncore_freq_ghz,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClusterSpec":
        """Rebuild a cluster from :meth:`to_dict` output."""
        try:
            return cls(
                name=payload["name"],
                cores=tuple(int(core) for core in payload["cores"]),
                min_freq_ghz=float(payload["min_freq_ghz"]),
                max_freq_ghz=float(payload["max_freq_ghz"]),
                freq_step_ghz=float(payload["freq_step_ghz"]),
                node_nm=int(payload["node_nm"]),
                node_scaling=payload["node_scaling"],
                uncore_freq_ghz=float(payload["uncore_freq_ghz"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed ClusterSpec payload: {exc}") from exc


@dataclass(frozen=True)
class ClusterTopology:
    """A machine's partition into per-cluster frequency domains."""

    spec: MachineSpec
    clusters: Tuple[ClusterSpec, ...]

    def __post_init__(self) -> None:
        require(len(self.clusters) > 0, "topology needs at least one cluster")
        names = [cluster.name for cluster in self.clusters]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate cluster names in {names}")
        owned: List[int] = []
        for cluster in self.clusters:
            owned.extend(cluster.cores)
        if sorted(owned) != list(range(self.spec.n_cores)):
            raise ConfigError(
                f"clusters must partition cores 0..{self.spec.n_cores - 1}; "
                f"got {sorted(owned)}"
            )
        grid = set(self.spec.frequencies())
        for cluster in self.clusters:
            off_grid = [f for f in cluster.frequencies() if f not in grid]
            if off_grid:
                raise ConfigError(
                    f"cluster {cluster.name!r} ladder leaves the machine's "
                    f"DVFS grid at {off_grid[:3]} GHz"
                )

    @property
    def is_single_domain(self) -> bool:
        """True when one cluster spans the whole machine ladder (legacy)."""
        if len(self.clusters) != 1:
            return False
        only = self.clusters[0]
        return only.frequencies() == self.spec.frequencies()

    def cluster_of_core(self, core: int) -> ClusterSpec:
        """The cluster owning ``core`` (:class:`ConfigError` if none)."""
        for cluster in self.clusters:
            if core in cluster.cores:
                return cluster
        raise ConfigError(f"core {core} out of range")

    def cluster_named(self, name: str) -> ClusterSpec:
        """Lookup by cluster name."""
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise ConfigError(
            f"unknown cluster {name!r}; expected one of "
            f"{[c.name for c in self.clusters]}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible encoding of the cluster layout.

        The timing substrate (:class:`MachineSpec`) is not serialized —
        topologies are layout descriptions over a spec the consumer
        already holds.
        """
        return {"clusters": [cluster.to_dict() for cluster in self.clusters]}

    @classmethod
    def from_dict(
        cls, payload: Dict[str, Any], spec: MachineSpec = None
    ) -> "ClusterTopology":
        """Rebuild a topology from :meth:`to_dict` over ``spec``."""
        try:
            clusters = tuple(
                ClusterSpec.from_dict(raw) for raw in payload["clusters"]
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(
                f"malformed ClusterTopology payload: {exc}"
            ) from exc
        return cls(spec=spec or haswell_i7_4770k(), clusters=clusters)


class ClusterDvfs:
    """Per-cluster frequency domains with the DvfsDomain surface.

    One underlying :class:`~repro.arch.frequency.DvfsDomain` state per
    cluster: validation against the *cluster's* ladder, transition
    counting at the machine's transition cost, and ``frequency_of(core)``
    resolving through the owning cluster — the method the simulator's
    segment timing consults, so a heterogeneous topology drops in
    wherever a chip-wide domain did.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        initial_freqs_ghz: Optional[Dict[str, float]] = None,
    ) -> None:
        self.topology = topology
        self.spec = topology.spec
        initial_freqs_ghz = initial_freqs_ghz or {}
        self._set_points: Dict[str, Tuple[float, ...]] = {}
        self._current: Dict[str, float] = {}
        self._owner: Dict[int, str] = {}
        for cluster in topology.clusters:
            self._set_points[cluster.name] = cluster.frequencies()
            initial = initial_freqs_ghz.get(cluster.name, cluster.max_freq_ghz)
            self._current[cluster.name] = self.validate(cluster.name, initial)
            for core in cluster.cores:
                self._owner[core] = cluster.name
        self.transitions = 0
        self.transition_time_ns = 0.0

    def set_points(self, name: str) -> Tuple[float, ...]:
        """The named cluster's supported frequencies, ascending."""
        points = self._set_points.get(name)
        if points is None:
            raise ConfigError(f"unknown cluster {name!r}")
        return points

    @property
    def current_freqs_ghz(self) -> Dict[str, float]:
        """Cluster name -> current frequency."""
        return dict(self._current)

    def frequency_of(self, core: Optional[int]) -> float:
        """The frequency of ``core``'s cluster (fastest cluster if None)."""
        if core is None:
            return max(self._current.values())
        name = self._owner.get(core)
        if name is None:
            raise ConfigError(f"core {core} out of range")
        return self._current[name]

    def validate(self, name: str, freq_ghz: float) -> float:
        """The cluster set point equal to ``freq_ghz``, or raise."""
        for point in self.set_points(name):
            if abs(point - freq_ghz) < 5e-4:
                return point
        points = self.set_points(name)
        raise ConfigError(
            f"{freq_ghz} GHz is not a set point of cluster {name!r} "
            f"({points[0]}..{points[-1]} GHz)"
        )

    def set_cluster_frequency(self, name: str, freq_ghz: float) -> float:
        """Switch one cluster; return its transition cost in ns."""
        target = self.validate(name, freq_ghz)
        if target == self._current[name]:
            return 0.0
        self._current[name] = target
        self.transitions += 1
        self.transition_time_ns += self.spec.dvfs_transition_ns
        return self.spec.dvfs_transition_ns


def homogeneous(spec: MachineSpec = None, name: str = "all") -> ClusterTopology:
    """The legacy machine as a one-cluster topology (byte-identical twin)."""
    spec = spec or haswell_i7_4770k()
    return ClusterTopology(
        spec=spec,
        clusters=(
            ClusterSpec(
                name=name,
                cores=tuple(range(spec.n_cores)),
                min_freq_ghz=spec.min_freq_ghz,
                max_freq_ghz=spec.max_freq_ghz,
                freq_step_ghz=spec.freq_step_ghz,
                node_nm=45,
                node_scaling="itrs",
                uncore_freq_ghz=spec.uncore_freq_ghz,
            ),
        ),
    )


def big_little(spec: MachineSpec = None) -> ClusterTopology:
    """A big.LITTLE split of the quad-core machine.

    Two 22 nm big cores keep the full 1-4 GHz ladder at the reference
    uncore clock; two 16 nm (conservative-scaled) little cores top out at
    2 GHz behind a half-speed uncore — the dim-silicon configuration the
    hetero experiments sweep against the homogeneous baseline.
    """
    spec = spec or haswell_i7_4770k()
    half = max(1, spec.n_cores // 2)
    return ClusterTopology(
        spec=spec,
        clusters=(
            ClusterSpec(
                name="big",
                cores=tuple(range(half)),
                min_freq_ghz=spec.min_freq_ghz,
                max_freq_ghz=spec.max_freq_ghz,
                freq_step_ghz=spec.freq_step_ghz,
                node_nm=22,
                node_scaling="itrs",
                uncore_freq_ghz=spec.uncore_freq_ghz,
            ),
            ClusterSpec(
                name="little",
                cores=tuple(range(half, spec.n_cores)),
                min_freq_ghz=spec.min_freq_ghz,
                max_freq_ghz=min(2.0, spec.max_freq_ghz),
                freq_step_ghz=spec.freq_step_ghz,
                node_nm=16,
                node_scaling="cons",
                uncore_freq_ghz=spec.uncore_freq_ghz / 2.0,
            ),
        ),
    )
