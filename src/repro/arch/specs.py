"""Machine configuration (the paper's Table II).

The simulated machine follows the paper's quad-core Intel Haswell
(i7-4770K-like) configuration: four superscalar out-of-order cores with
private L1/L2 caches and a shared L3, core frequency scalable between 1 and
4 GHz in 125 MHz steps, and a fixed-frequency uncore.

Latency unit conventions mirror how DVFS affects each component:

* L1/L2 latencies are given in **core cycles** — they scale with frequency,
* L3 and DRAM latencies are given in **nanoseconds** — the uncore and memory
  run on their own clock and do not scale with core frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.common.validation import check_positive, require
from repro.arch.cache import CacheConfig
from repro.arch.dram import DramConfig
from repro.arch.storequeue import StoreQueueConfig


@dataclass(frozen=True)
class CoreSpec:
    """Static parameters of one out-of-order core."""

    #: Dispatch/commit width in instructions per cycle.
    width: int = 4
    #: Reorder-buffer capacity in instructions.
    rob_entries: int = 192
    #: Fraction of the ROB usable to hide a load-miss chain's latency by
    #: executing independent instructions underneath it. Real windows hide
    #: only a modest slice of a DRAM miss: dependent work dominates the
    #: window once a chain stalls the head of the ROB.
    rob_hide_fraction: float = 0.2
    #: Peak store issue rate in stores per cycle (bursts of simple stores).
    store_issue_per_cycle: float = 2.0
    #: Instructions the core can still commit underneath an exposed miss
    #: before the stall-time counter starts counting (models commit-under-miss
    #: that makes the stall-time predictor optimistic, Section II.A).
    commit_under_miss_insns: int = 24

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("rob_entries", self.rob_entries)
        check_positive("store_issue_per_cycle", self.store_issue_per_cycle)
        require(0.0 <= self.rob_hide_fraction <= 1.0, "rob_hide_fraction in [0,1]")


@dataclass(frozen=True)
class MachineSpec:
    """Full machine description (paper Table II)."""

    n_cores: int = 4
    min_freq_ghz: float = 1.0
    max_freq_ghz: float = 4.0
    freq_step_ghz: float = 0.125
    core: CoreSpec = field(default_factory=CoreSpec)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1I", size_bytes=32 * 1024, assoc=4, line_bytes=64, latency_cycles=2
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D", size_bytes=32 * 1024, assoc=4, line_bytes=64, latency_cycles=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2", size_bytes=256 * 1024, assoc=8, line_bytes=64, latency_cycles=11
        )
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L3", size_bytes=4 * 1024 * 1024, assoc=16, line_bytes=64,
            latency_cycles=40,
        )
    )
    #: Fixed uncore clock in GHz; L3 latency in ns = latency_cycles / uncore.
    uncore_freq_ghz: float = 1.5
    dram: DramConfig = field(default_factory=DramConfig)
    store_queue: StoreQueueConfig = field(default_factory=StoreQueueConfig)
    #: DVFS transition cost (Section IV: "fixed cost of 2 microseconds").
    dvfs_transition_ns: float = 2_000.0

    def __post_init__(self) -> None:
        check_positive("n_cores", self.n_cores)
        check_positive("min_freq_ghz", self.min_freq_ghz)
        check_positive("freq_step_ghz", self.freq_step_ghz)
        require(
            self.max_freq_ghz >= self.min_freq_ghz,
            "max_freq_ghz must be >= min_freq_ghz",
        )
        check_positive("uncore_freq_ghz", self.uncore_freq_ghz)

    @property
    def l3_latency_ns(self) -> float:
        """Shared L3 hit latency in nanoseconds (uncore-clocked, non-scaling)."""
        return self.l3.latency_cycles / self.uncore_freq_ghz

    def frequencies(self) -> Tuple[float, ...]:
        """All supported DVFS set points, ascending (125 MHz granularity)."""
        freqs = []
        freq = self.min_freq_ghz
        # Use an integer loop to avoid float accumulation drift.
        steps = int(round((self.max_freq_ghz - self.min_freq_ghz) / self.freq_step_ghz))
        for i in range(steps + 1):
            freqs.append(round(self.min_freq_ghz + i * self.freq_step_ghz, 6))
        del freq
        return tuple(freqs)

    def table_rows(self) -> Tuple[Tuple[str, str], ...]:
        """Rows of the paper's Table II for report rendering."""
        return (
            ("Processor", f"{self.n_cores} cores, "
                          f"{self.min_freq_ghz:.1f} GHz to {self.max_freq_ghz:.1f} GHz"),
            ("Core", f"{self.core.width}-wide OoO, ROB {self.core.rob_entries}, "
                     f"SQ {self.store_queue.entries} entries"),
            ("Cache capacity", f"{self.l1i.size_bytes // 1024} KB / "
                               f"{self.l1d.size_bytes // 1024} KB / "
                               f"{self.l2.size_bytes // 1024} KB / "
                               f"{self.l3.size_bytes // (1024 * 1024)} MB"),
            ("Cache latency", f"{self.l1i.latency_cycles} / {self.l1d.latency_cycles}"
                              f" / {self.l2.latency_cycles} / {self.l3.latency_cycles}"
                              " cycles"),
            ("Set-associativity", f"{self.l1i.assoc} / {self.l1d.assoc} / "
                                  f"{self.l2.assoc} / {self.l3.assoc}"),
            ("Line size", f"{self.l1d.line_bytes} B lines, LRU replacement"),
            ("Uncore", f"shared L3 at {self.uncore_freq_ghz:.1f} GHz"),
            ("DRAM", f"row hit {self.dram.row_hit_ns:.0f} ns, "
                     f"row conflict {self.dram.row_conflict_ns:.0f} ns, "
                     f"{self.dram.n_banks} banks"),
            ("DVFS", f"{self.freq_step_ghz * 1000:.0f} MHz steps, "
                     f"{self.dvfs_transition_ns / 1000:.0f} us transition"),
        )


def haswell_i7_4770k() -> MachineSpec:
    """The default machine of the paper's evaluation (Table II)."""
    return MachineSpec()
