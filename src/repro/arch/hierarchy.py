"""Three-level cache hierarchy and miss-profile extraction.

Workload builders describe memory behaviour as access *patterns* (working-set
size, stride, random fraction). :class:`CacheHierarchy` simulates a sampled
address stream through L1D/L2/L3 to produce a :class:`MissProfile` — the
per-level hit distribution — which the builders then convert into the
LLC-miss cluster structure consumed by the segment-level core model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.validation import check_fraction, check_positive
from repro.arch.cache import Cache, CacheConfig


@dataclass(frozen=True)
class MissProfile:
    """Fraction of memory accesses served by each level of the hierarchy.

    Fractions sum to 1 (within float error): ``l1 + l2 + l3 + dram == 1``.
    """

    l1: float
    l2: float
    l3: float
    dram: float

    def __post_init__(self) -> None:
        for name, value in (("l1", self.l1), ("l2", self.l2),
                            ("l3", self.l3), ("dram", self.dram)):
            check_fraction(name, value)
        total = self.l1 + self.l2 + self.l3 + self.dram
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"miss profile fractions sum to {total}, expected 1")

    @property
    def llc_miss_rate(self) -> float:
        """Fraction of accesses that miss all caches and go to DRAM."""
        return self.dram


class CacheHierarchy:
    """L1D -> L2 -> L3 inclusive lookup chain."""

    def __init__(self, l1d: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> None:
        self.l1d = Cache(l1d)
        self.l2 = Cache(l2)
        self.l3 = Cache(l3)

    def reset(self) -> None:
        """Invalidate all levels."""
        self.l1d.reset()
        self.l2.reset()
        self.l3.reset()

    def access(self, addr: int) -> str:
        """Access ``addr``; return the level that served it.

        Returns one of ``"l1" | "l2" | "l3" | "dram"``. Lower levels are
        filled on a miss (inclusive hierarchy).
        """
        if self.l1d.access(addr):
            return "l1"
        if self.l2.access(addr):
            return "l2"
        if self.l3.access(addr):
            return "l3"
        return "dram"

    def profile_pattern(
        self,
        rng: np.random.Generator,
        working_set_bytes: int,
        stride_bytes: int = 64,
        random_fraction: float = 0.0,
        n_samples: int = 20_000,
        warmup: int = 4_000,
    ) -> MissProfile:
        """Derive a :class:`MissProfile` for a synthetic access pattern.

        The pattern walks a ``working_set_bytes`` region with ``stride_bytes``
        strides; with probability ``random_fraction`` an access jumps to a
        uniformly random location in the region instead. ``warmup`` accesses
        prime the caches before counting begins.
        """
        check_positive("working_set_bytes", working_set_bytes)
        check_positive("stride_bytes", stride_bytes)
        check_fraction("random_fraction", random_fraction)
        check_positive("n_samples", n_samples)
        self.reset()
        counts = {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
        pos = 0
        for i in range(warmup + n_samples):
            if random_fraction and rng.random() < random_fraction:
                addr = int(rng.integers(0, working_set_bytes))
            else:
                pos = (pos + stride_bytes) % working_set_bytes
                addr = pos
            level = self.access(addr)
            if i >= warmup:
                counts[level] += 1
        total = float(n_samples)
        return MissProfile(
            l1=counts["l1"] / total,
            l2=counts["l2"] / total,
            l3=counts["l3"] / total,
            dram=counts["dram"] / total,
        )
