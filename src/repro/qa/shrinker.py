"""Greedy workload minimizer for failing fuzz cases.

A failing seed is only as useful as it is small: the shrinker walks a
fixed set of structure-removing transformations — halve the unit count,
drop threads, switch off one feature at a time (barriers, critical
sections, serialization, phases, skew, allocation, memory traffic),
shorten units — and greedily accepts any transformation after which the
case *still fails one of the originally-failing invariants*. The loop
repeats until no transformation helps or the evaluation budget runs out,
so shrinking is deterministic and bounded.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Sequence, Set

from repro.qa.fuzzer import FuzzCase
from repro.workloads.synthetic import SyntheticWorkloadConfig

#: Hard cap on candidate evaluations per shrink (each costs simulations).
MAX_EVALUATIONS = 60

#: evaluate(case) -> names of failing invariants (empty = passes).
Evaluator = Callable[[FuzzCase], Set[str]]


def _candidates(config: SyntheticWorkloadConfig) -> Iterator[SyntheticWorkloadConfig]:
    """Structure-removing neighbours of ``config``, most aggressive first."""
    if config.n_units > 2:
        yield replace(config, n_units=max(2, config.n_units // 2))
    if config.n_threads > 1:
        yield replace(
            config,
            n_threads=max(1, config.n_threads // 2),
            # Single-thread configs cannot keep multi-thread-only knobs.
            barrier_period=config.barrier_period if config.n_threads // 2 > 1 else 0,
        )
    for feature, off in (
        ("barrier_period", 0),
        ("cs_probability", 0.0),
        ("serialized_fraction", 0.0),
        ("phase_amplitude", 0.0),
        ("memory_skew", 0.0),
        ("thread_imbalance", 0.0),
        ("alloc_bytes_per_unit", 0),
        ("clusters_per_kinsn", 0.0),
        ("unit_insns_cv", 0.0),
    ):
        if getattr(config, feature) != off:
            yield replace(config, **{feature: off})
    if config.unit_insns > 2_000:
        yield replace(config, unit_insns=max(2_000, config.unit_insns // 2))


def shrink(
    case: FuzzCase,
    failing: Sequence[str],
    evaluate: Evaluator,
    max_evaluations: int = MAX_EVALUATIONS,
) -> FuzzCase:
    """Minimize ``case`` while it keeps failing one of ``failing``.

    ``evaluate`` re-runs the invariant set on a candidate and returns the
    failing names; the shrinker treats a candidate as "still failing"
    when that set intersects the original failure — shrinking must not
    wander off to a different bug and declare victory.
    """
    target = set(failing)
    budget = max_evaluations
    current = case
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate_config in _candidates(current.config):
            if budget <= 0:
                break
            budget -= 1
            candidate = current.with_config(candidate_config)
            if target & evaluate(candidate):
                current = candidate
                improved = True
                break  # restart from the most aggressive transformation
    return current


def shrink_summary(original: FuzzCase, shrunk: FuzzCase) -> List[str]:
    """Human-readable field-by-field delta of a shrink result."""
    lines: List[str] = []
    for field in (
        "n_threads",
        "n_units",
        "unit_insns",
        "unit_insns_cv",
        "clusters_per_kinsn",
        "alloc_bytes_per_unit",
        "cs_probability",
        "barrier_period",
        "serialized_fraction",
        "phase_amplitude",
        "memory_skew",
        "thread_imbalance",
    ):
        before = getattr(original.config, field)
        after = getattr(shrunk.config, field)
        if before != after:
            lines.append(f"{field}: {before} -> {after}")
    return lines
