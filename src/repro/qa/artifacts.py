"""Replayable repro artifacts: what a failing QA run leaves behind.

An artifact is one JSON file holding everything needed to reproduce a
failure offline: the fuzz seed, the *shrunk* case (full workload config
plus simulation parameters), the pre-shrink case, the failing invariant
names with their recorded violations, and the shrink delta. ``repro-qa
replay <artifact>`` re-evaluates the shrunk case from the file alone —
no RNG involved — so a failure found in CI reproduces on any machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.common.errors import ConfigError
from repro.qa.fuzzer import FuzzCase, case_from_dict, case_to_dict

ARTIFACT_FORMAT_VERSION = 1

_PathLike = Union[str, Path]


@dataclass
class Failure:
    """One invariant's recorded violations on one case."""

    invariant: str
    violations: List[str] = field(default_factory=list)


@dataclass
class ReproArtifact:
    """A shrunk, replayable failure record."""

    case: FuzzCase
    failures: List[Failure]
    original: Optional[FuzzCase] = None
    shrink_delta: List[str] = field(default_factory=list)

    @property
    def seed(self) -> int:
        return self.case.seed

    def failing_names(self) -> List[str]:
        return [failure.invariant for failure in self.failures]


def artifact_to_dict(artifact: ReproArtifact) -> Dict:
    payload = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "kind": "repro-qa-artifact",
        "seed": artifact.seed,
        "failures": [
            {"invariant": f.invariant, "violations": list(f.violations)}
            for f in artifact.failures
        ],
        "case": case_to_dict(artifact.case),
        "shrink_delta": list(artifact.shrink_delta),
    }
    if artifact.original is not None:
        payload["original_case"] = case_to_dict(artifact.original)
    return payload


def artifact_from_dict(payload: Dict) -> ReproArtifact:
    version = payload.get("format_version")
    if payload.get("kind") != "repro-qa-artifact" or version != ARTIFACT_FORMAT_VERSION:
        raise ConfigError(
            f"not a v{ARTIFACT_FORMAT_VERSION} repro-qa artifact "
            f"(kind={payload.get('kind')!r}, format={version!r})"
        )
    original = payload.get("original_case")
    return ReproArtifact(
        case=case_from_dict(payload["case"]),
        failures=[
            Failure(invariant=f["invariant"], violations=list(f["violations"]))
            for f in payload.get("failures", [])
        ],
        original=case_from_dict(original) if original else None,
        shrink_delta=list(payload.get("shrink_delta", [])),
    )


def save_artifact(artifact: ReproArtifact, directory: _PathLike) -> Path:
    """Write the artifact into ``directory``; return its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"qa-seed-{artifact.seed}.json"
    path.write_text(
        json.dumps(artifact_to_dict(artifact), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_artifact(path: _PathLike) -> ReproArtifact:
    """Read an artifact written by :func:`save_artifact`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read artifact {path}: {exc}") from exc
    return artifact_from_dict(payload)
