"""Seeded workload fuzzer: random-but-valid synthetic programs.

Every fuzz case is fully determined by one integer seed: the seed drives
a :func:`repro.common.rng.rng_stream` draw over the structural space of
:class:`~repro.workloads.synthetic.SyntheticWorkloadConfig` — thread
counts, epoch shapes (barriers, critical sections, serialized
fractions), futex wait/wake density, store-burst/allocation pressure and
GC schedule knobs — plus the simulation parameters the invariants need
(frequency pair, quantum, energy-manager config).

Cases are deliberately tiny (tens of work units) so a QA run evaluates
dozens of seeds inside a CI time box; structure, not length, is what
breaks redundant implementations. :func:`case_to_dict` /
:func:`case_from_dict` give the exact JSON round-trip the replay
artifacts rely on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict

from repro.arch.dram import DramConfig
from repro.arch.specs import MachineSpec, haswell_i7_4770k
from repro.common.errors import ConfigError
from repro.common.rng import rng_stream
from repro.energy.manager import ManagerConfig
from repro.workloads.program import Program
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    build_synthetic_program,
)

#: Bump when the case schema changes; artifacts refuse other versions.
#: The heterogeneous fields (node/uncore) are optional with homogeneous
#: defaults, so pre-hetero artifacts still replay under version 1.
CASE_FORMAT_VERSION = 1

#: (node_nm, scaling) points the fuzzer draws V/f tables from.
_NODE_CHOICES = (
    (45, "itrs"),
    (32, "itrs"),
    (22, "itrs"),
    (16, "itrs"),
    (32, "cons"),
    (22, "cons"),
    (16, "cons"),
)


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzed QA scenario: a workload plus how to exercise it."""

    seed: int
    config: SyntheticWorkloadConfig
    #: Ground-truth / prediction-base frequency (a spec set point).
    base_freq_ghz: float
    #: Cross-frequency partner (a higher spec set point).
    high_freq_ghz: float
    #: Scheduling quantum of the managed run.
    quantum_ns: float
    #: Energy-manager configuration of the governor invariants.
    manager: ManagerConfig
    #: Technology node of the heterogeneous invariants' V/f table.
    node_nm: int = 45
    #: Node scaling assumption (``"itrs"`` or ``"cons"``).
    node_scaling: str = "itrs"
    #: Uncore scale of the heterogeneous predictions (1.0 = homogeneous).
    uncore_scale: float = 1.0

    def program(self) -> Program:
        """The deterministic program this case describes."""
        return build_synthetic_program(self.config)

    def with_config(self, config: SyntheticWorkloadConfig) -> "FuzzCase":
        """A copy with the workload swapped (the shrinker's move)."""
        return replace(self, config=config)


def fuzz_case(seed: int, spec: MachineSpec = None) -> FuzzCase:
    """Generate the deterministic :class:`FuzzCase` of ``seed``."""
    spec = spec or haswell_i7_4770k()
    rng = rng_stream(seed, "qa", "case")
    n_threads = int(rng.integers(1, spec.n_cores + 1))
    multi = n_threads > 1
    config = SyntheticWorkloadConfig(
        name=f"qa-seed-{seed}",
        seed=int(rng.integers(0, 2 ** 31)),
        n_threads=n_threads,
        n_units=int(rng.integers(12, 49)),
        unit_insns=int(rng.integers(30_000, 120_000)),
        unit_insns_cv=float(rng.uniform(0.0, 0.6)),
        cpi=float(rng.uniform(0.4, 0.8)),
        clusters_per_kinsn=float(rng.uniform(0.0, 2.0)),
        chain_depth_mean=float(rng.uniform(1.0, 3.0)),
        chain_locality=float(rng.uniform(0.0, 0.9)),
        # Allocation drives zero-init store bursts and the GC schedule;
        # ~1 in 4 cases turn it off entirely to cover GC-free paths.
        alloc_bytes_per_unit=(
            0 if rng.random() < 0.25 else int(rng.integers(64_000, 512_000))
        ),
        alloc_every=int(rng.integers(1, 5)),
        cs_probability=float(rng.uniform(0.0, 0.3)),
        cs_insns=int(rng.integers(2_000, 10_000)),
        n_locks=int(rng.integers(1, 5)),
        barrier_period=(
            int(rng.integers(2, 7)) if multi and rng.random() < 0.5 else 0
        ),
        thread_imbalance=float(rng.uniform(0.0, 0.5)) if multi else 0.0,
        memory_skew=float(rng.uniform(0.0, 0.8)) if multi else 0.0,
        phase_amplitude=float(rng.uniform(0.0, 0.5)),
        phase_periods=float(rng.uniform(2.0, 8.0)),
        serialized_fraction=float(rng.uniform(0.0, 0.3)),
        heap_mb=int(rng.integers(24, 64)),
        nursery_mb=int(rng.integers(2, 6)),
        survival_rate=float(rng.uniform(0.0, 0.5)),
        tags={"origin": "repro-qa"},
    )
    freqs = spec.frequencies()
    base_index = int(rng.integers(0, len(freqs) // 2))
    high_index = int(rng.integers(len(freqs) // 2, len(freqs)))
    manager = ManagerConfig(
        tolerable_slowdown=float(rng.uniform(0.02, 0.2)),
        hold_off=int(rng.integers(1, 4)),
        slack_banking=bool(rng.random() < 0.5),
        objective="min-edp" if rng.random() < 0.25 else "min-energy",
    )
    # Heterogeneous axes come from their own stream so adding them did
    # not perturb a single draw above — every pre-existing case field is
    # seed-for-seed identical to the pre-hetero fuzzer.
    hetero_rng = rng_stream(seed, "qa", "hetero")
    node_nm, node_scaling = _NODE_CHOICES[
        int(hetero_rng.integers(0, len(_NODE_CHOICES)))
    ]
    uncore_scale = (
        1.0
        if hetero_rng.random() < 0.5
        else float(hetero_rng.choice([0.5, 1.5, 2.0]))
    )
    return FuzzCase(
        seed=seed,
        config=config,
        base_freq_ghz=freqs[base_index],
        high_freq_ghz=freqs[high_index],
        quantum_ns=float(rng.choice([1.0e5, 2.0e5, 5.0e5])),
        manager=manager,
        node_nm=node_nm,
        node_scaling=node_scaling,
        uncore_scale=uncore_scale,
    )


# ----------------------------------------------------------------------
# JSON round-trip (the replay artifact's payload)
# ----------------------------------------------------------------------


def case_to_dict(case: FuzzCase) -> Dict[str, Any]:
    """Serialize a case to a JSON-compatible dict (exact round-trip)."""
    return {
        "format_version": CASE_FORMAT_VERSION,
        "seed": case.seed,
        "config": asdict(case.config),
        "base_freq_ghz": case.base_freq_ghz,
        "high_freq_ghz": case.high_freq_ghz,
        "quantum_ns": case.quantum_ns,
        "manager": asdict(case.manager),
        "node_nm": case.node_nm,
        "node_scaling": case.node_scaling,
        "uncore_scale": case.uncore_scale,
    }


def case_from_dict(payload: Dict[str, Any]) -> FuzzCase:
    """Rebuild a case from :func:`case_to_dict` output."""
    version = payload.get("format_version")
    if version != CASE_FORMAT_VERSION:
        raise ConfigError(
            f"unsupported QA case format {version!r} "
            f"(this build reads {CASE_FORMAT_VERSION})"
        )
    config_raw = dict(payload["config"])
    config_raw["dram"] = DramConfig(**config_raw.pop("dram"))
    try:
        config = SyntheticWorkloadConfig(**config_raw)
        manager = ManagerConfig(**payload["manager"])
        return FuzzCase(
            seed=int(payload["seed"]),
            config=config,
            base_freq_ghz=float(payload["base_freq_ghz"]),
            high_freq_ghz=float(payload["high_freq_ghz"]),
            quantum_ns=float(payload["quantum_ns"]),
            manager=manager,
            # Absent in pre-hetero artifacts: homogeneous defaults.
            node_nm=int(payload.get("node_nm", 45)),
            node_scaling=payload.get("node_scaling", "itrs"),
            uncore_scale=float(payload.get("uncore_scale", 1.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed QA case payload: {exc}") from exc
