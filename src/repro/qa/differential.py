"""Differential invariants: redundant implementations must agree exactly.

Four pairs of independently-optimized paths claim bit-identical
semantics; each gets a differential invariant that executes the fuzzed
workload through both sides and compares *bytes*, not approximations:

* classic vs. fast DES engines — serialized traces and managed-run
  decision logs;
* scalar vs. vectorized predictor evaluation — per-target predictions
  from :func:`repro.core.vectorized.evaluate_predict_jobs` against the
  scalar reference;
* scalar vs. sweep-engine prediction — :mod:`repro.core.sweep`'s
  columnar decomposition and frequency kernels for every predictor,
  plus the energy-manager decision log under either candidate engine;
* in-process vs. served governors and predictors — a live
  :mod:`repro.serve` server replayed over the NDJSON wire.

The serve pair needs a running server: :class:`ServeHarness` stands one
up (unix socket when the platform has ``AF_UNIX``, loopback TCP
otherwise) and hands each :class:`~repro.qa.context.CaseContext` a
connected client. Contexts without a client report those invariants as
skipped rather than failed.
"""

from __future__ import annotations

import json
import socket
import tempfile
from typing import List, Optional

from repro.core.predictors import make_predictor, predictor_names
from repro.core.vectorized import PredictJob, evaluate_predict_jobs, scalar_results
from repro.qa.context import CaseContext
from repro.qa.invariants import register
from repro.sim.serialize import trace_to_dict

#: Message differential checks emit when the serve side is unavailable.
SERVE_SKIPPED = "serve differential skipped: no live server in this context"


def _trace_bytes(trace) -> bytes:
    """Canonical byte encoding of a trace (the parity currency)."""
    return json.dumps(
        trace_to_dict(trace), sort_keys=True, separators=(",", ":")
    ).encode()


def _decision_bytes(decisions) -> bytes:
    from repro.serve import protocol
    from repro.serve.sessions import decision_to_wire

    return protocol.encode_frame(
        {"decisions": [decision_to_wire(d) for d in decisions]}
    )


# ----------------------------------------------------------------------
# Classic vs. fast engines
# ----------------------------------------------------------------------


@register(
    "diff-engine-trace",
    "classic and fast DES engines produce byte-identical serialized "
    "traces at a fixed frequency",
)
def _diff_engine_trace(context: CaseContext) -> List[str]:
    fast = context.result(engine="fast")
    classic = context.result(engine="classic")
    violations: List[str] = []
    if fast.total_ns != classic.total_ns:
        violations.append(
            f"total time diverges: fast {fast.total_ns!r} ns vs classic "
            f"{classic.total_ns!r} ns"
        )
    if _trace_bytes(fast.trace) != _trace_bytes(classic.trace):
        violations.append(
            "serialized traces differ between the fast and classic engines"
        )
    return violations


@register(
    "diff-engine-governor",
    "a managed run reproduces the identical decision log and trace on "
    "both DES engines",
)
def _diff_engine_governor(context: CaseContext) -> List[str]:
    fast_trace, fast_decisions = context.managed("fast")
    classic_trace, classic_decisions = context.managed("classic")
    violations: List[str] = []
    if _decision_bytes(fast_decisions) != _decision_bytes(classic_decisions):
        violations.append(
            f"manager decisions diverge: {len(fast_decisions)} fast vs "
            f"{len(classic_decisions)} classic"
        )
    if _trace_bytes(fast_trace) != _trace_bytes(classic_trace):
        violations.append("managed traces differ between engines")
    return violations


# ----------------------------------------------------------------------
# Scalar vs. vectorized predictors
# ----------------------------------------------------------------------


@register(
    "diff-predict-vectorized",
    "the columnar batch evaluator returns bit-identical predictions to "
    "the scalar DEP path, both CTP policies, with and without BURST",
)
def _diff_predict_vectorized(context: CaseContext) -> List[str]:
    violations: List[str] = []
    epochs = tuple(context.epochs())
    base = context.case.base_freq_ghz
    targets = tuple(context.target_ladder())
    jobs = [
        PredictJob(
            predictor=make_predictor(name, across_epoch_ctp=ctp),
            epochs=epochs,
            base_freq_ghz=base,
            target_freqs_ghz=targets,
        )
        for name in ("DEP", "DEP+BURST")
        for ctp in (True, False)
    ]
    vectorized = evaluate_predict_jobs(jobs)
    for job, batch in zip(jobs, vectorized):
        scalar = scalar_results(job)
        if batch != scalar:
            policy = "across" if job.predictor.across_epoch_ctp else "per"
            violations.append(
                f"{job.predictor.name} ({policy}-epoch CTP): vectorized "
                f"{batch!r} != scalar {scalar!r}"
            )
    return violations


# ----------------------------------------------------------------------
# Scalar vs. sweep kernels
# ----------------------------------------------------------------------


@register(
    "sweep-scalar-identity",
    "the simulate-once sweep engine (columnar decomposition + frequency "
    "kernels) is byte-identical to the scalar per-frequency path for all "
    "predictors, and leaves energy-manager decisions unchanged",
)
def _sweep_scalar_identity(context: CaseContext) -> List[str]:
    from repro.core.epochs import extract_epochs
    from repro.core.sweep import EpochArrays, TraceSweep, sweep_predict_epochs

    violations: List[str] = []
    trace = context.result().trace
    base = context.case.base_freq_ghz
    targets = context.target_ladder()

    # The decomposition itself: columnar arrays must reproduce the
    # reference per-event walk record for record.
    reference = extract_epochs(trace.events)
    if EpochArrays.from_trace(trace).to_epochs() != reference:
        violations.append(
            "columnar epoch decomposition differs from extract_epochs"
        )

    sweep = TraceSweep(trace)
    epochs = context.epochs()
    arrays = EpochArrays.from_epochs(epochs)
    for name in predictor_names():
        predictor = make_predictor(name)
        whole = sweep.predict(predictor, targets)
        whole_scalar = [
            predictor.predict_total_ns(trace, target) for target in targets
        ]
        if whole != whole_scalar:
            violations.append(
                f"{name}: whole-trace sweep {whole!r} != scalar "
                f"{whole_scalar!r}"
            )
        window = sweep_predict_epochs(predictor, arrays, base, targets)
        window_scalar = [
            predictor.predict_epochs(epochs, base, target)
            for target in targets
        ]
        if window != window_scalar:
            violations.append(
                f"{name}: window sweep {window!r} != scalar "
                f"{window_scalar!r}"
            )

    # The consumer that matters most: per-quantum governor decisions must
    # not depend on which engine scored the candidate table.
    _, swept = context.managed("fast", sweep=True)
    _, scalar = context.managed("fast", sweep=False)
    if _decision_bytes(swept) != _decision_bytes(scalar):
        violations.append(
            f"manager decisions diverge between sweep ({len(swept)}) and "
            f"scalar ({len(scalar)}) candidate evaluation"
        )
    return violations


# ----------------------------------------------------------------------
# Batched vs. single-instance simulation
# ----------------------------------------------------------------------


@register(
    "batch-single-identity",
    "simulating a case inside a batch (fixed lanes at both case "
    "frequencies plus a governor lane) is byte-identical to the "
    "single-instance runs: traces, epochs and manager decisions",
)
def _batch_single_identity(context: CaseContext) -> List[str]:
    from repro.core.epochs import extract_epochs
    from repro.energy.manager import EnergyManager
    from repro.sim.batch import BatchInstance, simulate_batch

    case = context.case
    program = context.program
    manager = EnergyManager(context.spec, case.manager)
    freqs = list(dict.fromkeys((case.base_freq_ghz, case.high_freq_ghz)))
    instances = [
        BatchInstance(
            program=program, freq_ghz=freq, spec=context.spec,
            quantum_ns=case.quantum_ns, label=f"fixed@{freq}",
        )
        for freq in freqs
    ]
    instances.append(
        BatchInstance(
            program=program, governor=manager, spec=context.spec,
            quantum_ns=case.quantum_ns, label="managed",
        )
    )
    batched = simulate_batch(instances)

    violations: List[str] = []
    for freq, result in zip(freqs, batched):
        solo = context.result(freq)
        if _trace_bytes(result.trace) != _trace_bytes(solo.trace):
            violations.append(
                f"batched trace at {freq} GHz differs from the "
                "single-instance run"
            )
        elif extract_epochs(result.trace.events) != context.epochs(freq):
            violations.append(
                f"batched epochs at {freq} GHz differ from the "
                "single-instance decomposition"
            )
    solo_trace, solo_decisions = context.managed("fast")
    if _trace_bytes(batched[-1].trace) != _trace_bytes(solo_trace):
        violations.append(
            "batched managed trace differs from the single-instance run"
        )
    if _decision_bytes(manager.decisions) != _decision_bytes(solo_decisions):
        violations.append(
            f"batched governor decisions ({len(manager.decisions)}) differ "
            f"from the single-instance log ({len(solo_decisions)})"
        )
    return violations


# ----------------------------------------------------------------------
# Heterogeneous hardware: single-domain identity + V/f physicality
# ----------------------------------------------------------------------


@register(
    "hetero-single-domain-identity",
    "a single-cluster topology with the legacy V/f table reproduces the "
    "chip-wide manager byte for byte, (f, 1.0) target tuples are "
    "bit-identical to plain frequency targets, and heterogeneous sweeps "
    "match the scalar uncore path for every predictor",
)
def _hetero_single_domain_identity(context: CaseContext) -> List[str]:
    from repro.arch.clusters import homogeneous
    from repro.core.sweep import EpochArrays, sweep_predict_epochs
    from repro.energy.manager import ClusterManager
    from repro.sim.run import simulate_managed

    case = context.case
    violations: List[str] = []

    # Governor identity: the homogeneous one-cluster topology is the
    # legacy machine and must leave no trace of the hetero layer.
    manager = ClusterManager(homogeneous(context.spec), case.manager)
    result = simulate_managed(
        context.program,
        manager,
        spec=context.spec,
        quantum_ns=case.quantum_ns,
        engine="fast",
    )
    legacy_trace, legacy_decisions = context.managed("fast")
    if _trace_bytes(result.trace) != _trace_bytes(legacy_trace):
        violations.append(
            "single-domain managed trace differs from the chip-wide "
            "manager's"
        )
    if _decision_bytes(manager.decisions) != _decision_bytes(legacy_decisions):
        violations.append(
            f"single-domain decisions ({len(manager.decisions)}) differ "
            f"from the chip-wide log ({len(legacy_decisions)})"
        )

    # Target-tuple identity and hetero sweep-vs-scalar parity.
    epochs = context.epochs()
    arrays = EpochArrays.from_epochs(epochs)
    base = case.base_freq_ghz
    targets = context.target_ladder()
    uncore = case.uncore_scale
    for name in predictor_names():
        predictor = make_predictor(name)
        plain = sweep_predict_epochs(predictor, arrays, base, targets)
        tupled = sweep_predict_epochs(
            predictor, arrays, base, [(target, 1.0) for target in targets]
        )
        if plain != tupled:
            violations.append(
                f"{name}: (f, 1.0) tuples {tupled!r} != plain targets "
                f"{plain!r}"
            )
        if uncore != 1.0:
            swept = sweep_predict_epochs(
                predictor, arrays, base,
                [(target, uncore) for target in targets],
            )
            scalar = [
                predictor.predict_epochs(
                    epochs, base, target, uncore_scale=uncore
                )
                for target in targets
            ]
            if swept != scalar:
                violations.append(
                    f"{name} at uncore {uncore}: sweep {swept!r} != scalar "
                    f"{scalar!r}"
                )
    return violations


@register(
    "vf-table-physicality",
    "the case's tech-node V/f table is physical: f_min <= f_max on the "
    "machine grid, voltage strictly increasing and never below the Vth "
    "floor, chip power strictly increasing along the ladder, and table/"
    "cluster specs round-trip through JSON exactly",
)
def _vf_table_physicality(context: CaseContext) -> List[str]:
    from repro.arch.clusters import ClusterTopology, big_little, homogeneous
    from repro.energy.power import PowerModel, node_power_config
    from repro.energy.vftable import NodeVfTable

    case = context.case
    spec = context.spec
    violations: List[str] = []
    table = NodeVfTable(spec, case.node_nm, case.node_scaling)
    node = table.node
    rows = table.rows()
    label = f"{node.node_nm}nm-{node.scaling}"
    if not rows:
        return [f"{label}: table has no supported set points"]
    if table.f_min_ghz > table.f_max_ghz:
        violations.append(
            f"{label}: f_min {table.f_min_ghz} > f_max {table.f_max_ghz}"
        )
    grid = set(spec.frequencies())
    off_grid = [freq for freq, _ in rows if freq not in grid]
    if off_grid:
        violations.append(f"{label}: set points off the machine grid: {off_grid}")
    previous = None
    for freq, voltage in rows:
        if voltage < node.v_floor - 1e-9:
            violations.append(
                f"{label}: {freq} GHz at {voltage:.4f} V is below the "
                f"Vth floor {node.v_floor:.4f} V"
            )
        if previous is not None and voltage <= previous:
            violations.append(
                f"{label}: voltage not strictly increasing at {freq} GHz"
            )
        previous = voltage
    model = PowerModel(spec, node_power_config(node), vf_table=table)
    max_powers = [model.max_power_w(freq) for freq, _ in rows]
    static_powers = [model.static_power_w(freq) for freq, _ in rows]
    for i in range(1, len(rows)):
        if max_powers[i] <= max_powers[i - 1]:
            violations.append(
                f"{label}: max power not strictly increasing at "
                f"{rows[i][0]} GHz"
            )
        if static_powers[i] < static_powers[i - 1]:
            violations.append(
                f"{label}: static power decreasing at {rows[i][0]} GHz"
            )
    clone = NodeVfTable.from_dict(json.loads(json.dumps(table.to_dict())))
    if clone.rows() != rows:
        violations.append(f"{label}: JSON round-trip changed the table")
    for topology in (homogeneous(spec), big_little(spec)):
        rebuilt = ClusterTopology.from_dict(
            json.loads(json.dumps(topology.to_dict())), spec
        )
        if rebuilt.clusters != topology.clusters:
            violations.append(
                f"cluster topology {[c.name for c in topology.clusters]} "
                "does not round-trip through JSON"
            )
    return violations


# ----------------------------------------------------------------------
# In-process vs. served (over the NDJSON wire)
# ----------------------------------------------------------------------


@register(
    "diff-serve-predict",
    "the predict endpoint returns bit-identical results to in-process "
    "predict_epochs for every predictor (repr-exact float round-trip)",
)
def _diff_serve_predict(context: CaseContext) -> List[str]:
    client = context.serve_client
    if client is None:
        return [SERVE_SKIPPED]
    epochs = context.epochs()
    base = context.case.base_freq_ghz
    targets = context.target_ladder()
    violations: List[str] = []
    for name in predictor_names():
        reply = client.predict(
            epochs, base, predictor=name, target_freqs_ghz=targets
        )
        expected = [
            make_predictor(name).predict_epochs(epochs, base, target)
            for target in targets
        ]
        if reply["predicted_ns"] != expected:
            violations.append(
                f"{name}: served {reply['predicted_ns']!r} != in-process "
                f"{expected!r}"
            )
    return violations


@register(
    "diff-serve-governor",
    "replaying a managed trace through a server-side govern session "
    "reproduces the in-process decision log byte for byte",
)
def _diff_serve_governor(context: CaseContext) -> List[str]:
    client = context.serve_client
    if client is None:
        return [SERVE_SKIPPED]
    from repro.serve.client import replay_decisions

    trace, local = context.managed("fast")
    remote = replay_decisions(client, trace, context.case.manager)
    if _decision_bytes(remote) != _decision_bytes(local):
        return [
            f"served decision log ({len(remote)} decisions) differs from "
            f"the in-process log ({len(local)} decisions)"
        ]
    return []


# ----------------------------------------------------------------------
# The live server the serve differentials talk to
# ----------------------------------------------------------------------


class ServeHarness:
    """One background server + client shared across a QA run.

    Prefers a unix socket in a private temporary directory; platforms
    without ``AF_UNIX`` get loopback TCP on an ephemeral port, so
    parallel QA runs never collide on an endpoint either way.
    """

    def __init__(self) -> None:
        from repro.serve.background import BackgroundServer
        from repro.serve.server import ServeConfig

        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if hasattr(socket, "AF_UNIX"):
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-qa-serve-")
            config = ServeConfig(socket_path=f"{self._tmp.name}/qa.sock")
        else:
            config = ServeConfig(host="127.0.0.1", port=0)
        self.server = BackgroundServer(config)
        self.server.start()
        self.client = self._connect()

    def _connect(self):
        from repro.serve.client import ServeClient

        if self.server.config.socket_path is not None:
            return ServeClient.connect(socket_path=self.server.config.socket_path)
        return ServeClient.connect(host="127.0.0.1", port=self.server.tcp_port)

    def close(self) -> None:
        """Tear down client, server and socket directory (idempotent)."""
        try:
            self.client.close()
        finally:
            self.server.stop()
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None

    def __enter__(self) -> "ServeHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
