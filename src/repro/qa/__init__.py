"""Generative QA: fuzzing, invariants and differential harnesses.

The repo keeps several independently-optimized implementations of the
same semantics — the classic and fast DES engines, the scalar and
vectorized predictor paths, the in-process and served governors. Pinned
benchmarks prove parity on a handful of points; this package turns the
paper's structural claims into an always-on generative gate:

* :mod:`repro.qa.fuzzer` — seeded generator of random-but-valid
  synthetic workloads (thread counts, epoch shapes, futex patterns,
  store-burst density, GC pressure);
* :mod:`repro.qa.invariants` — named, composable :class:`Invariant`
  objects over traces, predictors and governor sessions;
* :mod:`repro.qa.differential` — differential invariants asserting the
  redundant implementations byte-identical;
* :mod:`repro.qa.shrinker` — greedy minimizer for failing workloads;
* :mod:`repro.qa.artifacts` — replayable repro artifacts (seed + JSON
  program) dumped on failure;
* :mod:`repro.qa.runner` / :mod:`repro.qa.cli` — the ``repro-qa``
  orchestration (``run --seeds N``, ``replay``, ``list-invariants``).
"""

from repro.qa.fuzzer import FuzzCase, fuzz_case
from repro.qa.invariants import Invariant, get_invariant, invariant_names
from repro.qa.runner import QaReport, run_qa

__all__ = [
    "FuzzCase",
    "fuzz_case",
    "Invariant",
    "get_invariant",
    "invariant_names",
    "QaReport",
    "run_qa",
]
