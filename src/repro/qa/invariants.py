"""The invariant registry: the paper's structural claims as named checks.

Each :class:`Invariant` is a named predicate over a
:class:`~repro.qa.context.CaseContext`; evaluating one returns a list of
human-readable violations (empty = holds). The registry promotes the
ad-hoc checks of :mod:`repro.sim.checks` and adds the metamorphic
properties the predictors and the governor must satisfy on *any* valid
workload (PAPER.md §III–IV):

* physical trace invariants — epoch tiling/conservation, core capacity,
  counter monotonicity, GC balance;
* cross-frequency conservation — logical work is frequency-invariant,
  speedups stay in the physically possible band;
* self-prediction identity — predicting at the base frequency
  reproduces the measured time for every predictor;
* monotone frequency scaling — predicted time never increases with the
  target frequency;
* BURST dominance — adding store-burst time to the non-scaling
  component can only raise predictions above the base frequency and
  lower them below it, never the reverse;
* governor threshold respect — every decision's predicted slowdown
  stays within the manager's (possibly banked) bound, on a valid set
  point.

The differential invariants of :mod:`repro.qa.differential` register
here too, so ``repro-qa list-invariants`` shows the whole gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.common.errors import ConfigError
from repro.core.predictors import make_predictor, predictor_names
from repro.qa.context import CaseContext
from repro.sim import checks

#: Relative tolerance of the identity check (matches the pinned
#: integration tests: boundary accounting makes identity near-, not
#: bit-exact for lifetime-based predictors).
IDENTITY_REL_TOL = 0.02

#: Relative slack of the ordering checks (monotonicity, dominance):
#: generous against accumulation noise, far below any real regression.
_ORDER_REL_EPS = 1e-9

#: Absolute slack (ns) on threshold comparisons.
_ABS_EPS = 1e-6


@dataclass(frozen=True)
class Invariant:
    """One named structural property of the system."""

    name: str
    description: str
    check: Callable[[CaseContext], List[str]]

    def evaluate(self, context: CaseContext) -> List[str]:
        """Violations of this invariant on ``context`` (empty = holds)."""
        return self.check(context)


_REGISTRY: Dict[str, Invariant] = {}


def register(name: str, description: str):
    """Decorator: add a check function to the registry under ``name``."""

    def wrap(check: Callable[[CaseContext], List[str]]) -> Invariant:
        if name in _REGISTRY:
            raise ConfigError(f"invariant {name!r} registered twice")
        invariant = Invariant(name=name, description=description, check=check)
        _REGISTRY[name] = invariant
        return invariant

    return wrap


def invariant_names() -> List[str]:
    """All registered invariant names, in registration order."""
    _ensure_differentials()
    return list(_REGISTRY)


def get_invariant(name: str) -> Invariant:
    """Registry lookup (:class:`ConfigError` with choices if unknown)."""
    _ensure_differentials()
    invariant = _REGISTRY.get(name)
    if invariant is None:
        raise ConfigError(
            f"unknown invariant {name!r}; expected one of {invariant_names()}"
        )
    return invariant


def _ensure_differentials() -> None:
    # The differential invariants live in their own module; importing it
    # here (not at module top) avoids a cycle while keeping the registry
    # complete for every consumer.
    import repro.qa.differential  # noqa: F401


# ----------------------------------------------------------------------
# Physical trace invariants (promoted from repro.sim.checks)
# ----------------------------------------------------------------------


@register(
    "epoch-conservation",
    "synchronization epochs tile the run: no gaps, durations sum to the "
    "trace's total time",
)
def _epoch_conservation(context: CaseContext) -> List[str]:
    return checks.check_epoch_tiling(context.result().trace)


@register(
    "core-capacity",
    "no interval or epoch is busier than n_cores x wall time",
)
def _core_capacity(context: CaseContext) -> List[str]:
    return checks.check_capacity(context.result().trace, context.spec.n_cores)


@register(
    "counter-monotonicity",
    "per-thread cumulative counters never decrease across events",
)
def _counter_monotonicity(context: CaseContext) -> List[str]:
    return checks.check_counter_monotonicity(context.result().trace)


@register(
    "gc-balance",
    "GC_START/GC_END markers alternate and sum to the recorded pause time",
)
def _gc_balance(context: CaseContext) -> List[str]:
    return checks.check_gc_balance(context.result().trace)


@register(
    "cross-frequency-conservation",
    "re-simulating at another frequency retires the same application "
    "instructions and collections; the speedup stays within [1, f_hi/f_lo]",
)
def _cross_frequency(context: CaseContext) -> List[str]:
    case = context.case
    violations: List[str] = []
    lo = context.result(case.base_freq_ghz)
    hi = context.result(case.high_freq_ghz)
    # Only application threads retire frequency-invariant work: GC/JIT
    # service threads do timing-dependent amounts (heap state at each
    # collection shifts with frequency), so they are excluded here.
    counters_lo = lo.trace.final_counters()
    counters_hi = hi.trace.final_counters()
    insns_lo = sum(counters_lo[tid].insns for tid in lo.trace.app_tids())
    insns_hi = sum(counters_hi[tid].insns for tid in hi.trace.app_tids())
    if abs(insns_lo - insns_hi) > 0.001 * max(insns_lo, insns_hi, 1):
        violations.append(
            f"application instruction counts vary with frequency: "
            f"{insns_lo} at {case.base_freq_ghz} GHz vs "
            f"{insns_hi} at {case.high_freq_ghz} GHz"
        )
    # The GC trigger is byte-based, but allocation *interleaving* shifts
    # with frequency (DRAM stalls do not scale), so the nursery slack at
    # each overflow differs and a boundary collection can slide in or
    # out of the run — one cycle of drift is legitimate, more is a bug.
    cycle_drift = abs(lo.trace.gc_cycles - hi.trace.gc_cycles)
    if cycle_drift > 1:
        violations.append(
            f"GC counts vary with frequency beyond one boundary "
            f"collection: {lo.trace.gc_cycles} vs {hi.trace.gc_cycles}"
        )
    if case.high_freq_ghz > case.base_freq_ghz:
        if cycle_drift == 0:
            speedup = lo.total_ns / hi.total_ns
            what = "speedup"
        else:
            # An extra collection on one side wrecks the raw band;
            # mutator time (total minus stop-the-world pauses) still
            # has to respect the physics.
            speedup = (lo.total_ns - lo.trace.gc_time_ns) / (
                hi.total_ns - hi.trace.gc_time_ns
            )
            what = "mutator speedup"
        ceiling = case.high_freq_ghz / case.base_freq_ghz
        if not 1.0 - 1e-6 <= speedup <= ceiling + 1e-6:
            violations.append(
                f"{what} {speedup:.4f} from {case.base_freq_ghz} to "
                f"{case.high_freq_ghz} GHz outside [1, {ceiling:.3f}]"
            )
    return violations


# ----------------------------------------------------------------------
# Predictor invariants (metamorphic properties)
# ----------------------------------------------------------------------


@register(
    "self-prediction-identity",
    "target == base frequency => predicted time == measured time, for "
    "every predictor",
)
def _self_prediction(context: CaseContext) -> List[str]:
    violations: List[str] = []
    result = context.result()
    base = context.case.base_freq_ghz
    for name in predictor_names():
        predicted = make_predictor(name).predict_total_ns(result.trace, base)
        error = abs(predicted - result.total_ns) / max(result.total_ns, 1.0)
        if error > IDENTITY_REL_TOL:
            violations.append(
                f"{name}: predicting {base} GHz from {base} GHz gives "
                f"{predicted:.1f} ns vs measured {result.total_ns:.1f} ns "
                f"({error:.2%} off)"
            )
    return violations


@register(
    "monotone-frequency-scaling",
    "predicted time never increases with the target frequency (the "
    "scaling component is frequency-proportional, the rest fixed)",
)
def _monotone_scaling(context: CaseContext) -> List[str]:
    violations: List[str] = []
    trace = context.result().trace
    base = context.case.base_freq_ghz
    ladder = context.target_ladder()
    for name in predictor_names():
        predictor = make_predictor(name)
        predictions = [
            predictor.predict_total_ns(trace, target, base_freq_ghz=base)
            for target in ladder
        ]
        for (f_lo, p_lo), (f_hi, p_hi) in zip(
            zip(ladder, predictions), zip(ladder[1:], predictions[1:])
        ):
            if p_hi > p_lo * (1.0 + _ORDER_REL_EPS) + _ABS_EPS:
                violations.append(
                    f"{name}: predicted {p_hi:.1f} ns at {f_hi} GHz exceeds "
                    f"{p_lo:.1f} ns at {f_lo} GHz"
                )
        if any(p <= 0 for p in predictions):
            violations.append(f"{name}: non-positive prediction in {predictions}")
    return violations


@register(
    "burst-dominance",
    "+BURST moves store-queue-full time into the non-scaling component: "
    "vs. the plain variant it predicts >= above the base frequency and "
    "<= below it (BURST non-negativity)",
)
def _burst_dominance(context: CaseContext) -> List[str]:
    violations: List[str] = []
    trace = context.result().trace
    base = context.case.base_freq_ghz
    for target in context.target_ladder():
        for family in ("M+CRIT", "COOP", "DEP"):
            plain = make_predictor(family).predict_total_ns(
                trace, target, base_freq_ghz=base
            )
            burst = make_predictor(f"{family}+BURST").predict_total_ns(
                trace, target, base_freq_ghz=base
            )
            slack = plain * _ORDER_REL_EPS + _ABS_EPS
            if target >= base and burst < plain - slack:
                violations.append(
                    f"{family}+BURST predicts {burst:.1f} ns < plain "
                    f"{plain:.1f} ns at {target} GHz (>= base {base} GHz)"
                )
            if target <= base and burst > plain + slack:
                violations.append(
                    f"{family}+BURST predicts {burst:.1f} ns > plain "
                    f"{plain:.1f} ns at {target} GHz (<= base {base} GHz)"
                )
    return violations


# ----------------------------------------------------------------------
# Governor invariants
# ----------------------------------------------------------------------


@register(
    "governor-threshold-respect",
    "every manager decision picks a valid set point whose predicted "
    "slowdown stays within the (possibly banked) tolerable bound",
)
def _governor_threshold(context: CaseContext) -> List[str]:
    violations: List[str] = []
    config = context.case.manager
    _, decisions = context.managed()
    set_points = set(context.spec.frequencies())
    # Slack banking widens the instantaneous bound, but never beyond 2x
    # the configured threshold (the manager's own clamp).
    bound = config.tolerable_slowdown * (2.0 if config.slack_banking else 1.0)
    for decision in decisions:
        if decision.chosen_freq_ghz not in set_points:
            violations.append(
                f"decision {decision.interval_index} chose "
                f"{decision.chosen_freq_ghz} GHz, not a machine set point"
            )
        if decision.predicted_slowdown > bound + _ABS_EPS:
            violations.append(
                f"decision {decision.interval_index} accepted predicted "
                f"slowdown {decision.predicted_slowdown:.4f} over the "
                f"bound {bound:.4f}"
            )
        if decision.predicted_slowdown < -_ABS_EPS:
            violations.append(
                f"decision {decision.interval_index} reports negative "
                f"slowdown {decision.predicted_slowdown:.4f}: prediction "
                f"not monotone vs. the maximum frequency"
            )
    return violations


# ----------------------------------------------------------------------
# Fleet invariants
# ----------------------------------------------------------------------


@register(
    "fleet-policy-dominance",
    "every prediction-driven fleet policy respects the fleet power cap "
    "and never spends more aggregate energy than the all-max-frequency "
    "baseline at equal-or-worse SLA",
)
def _fleet_policy_dominance(context: CaseContext) -> List[str]:
    # The fleet tier imports the sweep/batch stack; keep it out of this
    # module's import time the same way the differentials stay out.
    from repro.fleet.dominance import case_dominance_violations

    return case_dominance_violations(context)


@register(
    "fleet-parallel-identity",
    "fleet reports are byte-identical on the determinism view whether "
    "profiles are built serially, by a multiprocess worker pool, or "
    "rehydrated from the persistent profile store",
)
def _fleet_parallel_identity(context: CaseContext) -> List[str]:
    from repro.fleet.parallel import case_parallel_identity_violations

    return case_parallel_identity_violations(context)
