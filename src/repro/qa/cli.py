"""``repro-qa``: the generative QA gate from the command line.

Subcommands::

    repro-qa run --seeds 50                    # fuzz 50 seeds through the gate
    repro-qa run --seeds 200 --time-budget 120 # CI smoke: stop at the box
    repro-qa run --invariants diff-engine-trace,self-prediction-identity
    repro-qa replay qa-artifacts/qa-seed-17.json
    repro-qa promote qa-artifacts/qa-seed-17.json --out-dir fleet-corpus
    repro-qa list-invariants

``run`` exits non-zero on the first invariant failure, after shrinking
the workload and writing a replayable artifact (seed + JSON program).
``replay`` re-evaluates an artifact's shrunk case and reports whether
the recorded failure still reproduces. ``promote`` converts an
artifact's case into a ``repro.fleet`` tenant spec, so fleets drawn
with ``repro-fleet --corpus DIR`` include the shapes fuzzing found
interesting.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.common.errors import ReproError
from repro.common.tables import format_table
from repro.qa.artifacts import load_artifact
from repro.qa.invariants import get_invariant, invariant_names
from repro.qa.runner import DEFAULT_ARTIFACT_DIR, replay_case, run_qa


def _parse_invariants(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    for name in names:  # fail fast with the valid choices spelled out
        get_invariant(name)
    return names


def _cmd_run(args: argparse.Namespace) -> int:
    seeds = range(args.start_seed, args.start_seed + args.seeds)
    report = run_qa(
        seeds,
        invariants=_parse_invariants(args.invariants),
        time_budget_s=args.time_budget,
        artifact_dir=args.artifacts,
        serve=not args.no_serve,
        shrink_failures=not args.no_shrink,
        batch_prefill=args.batch_prefill,
        log=print,
    )
    box = " (time-boxed)" if report.time_boxed else ""
    serve_note = "live" if report.serve_live else "skipped"
    print(
        f"{report.cases_run} case(s) in {report.elapsed_s:.1f}s{box}, "
        f"{len(report.invariants)} invariant(s), serve diffs {serve_note}"
    )
    if report.ok:
        print("all invariants hold")
        return 0
    for outcome in report.outcomes:
        for failure in outcome.failures:
            print(f"seed {outcome.seed} broke {failure.invariant}:")
            for violation in failure.violations:
                print(f"  - {violation}")
    if report.artifact_path is not None:
        print(f"replay with: repro-qa replay {report.artifact_path}")
    return 1


def _cmd_replay(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    names = artifact.failing_names()
    print(
        f"replaying seed {artifact.seed} against "
        f"{names if not args.all_invariants else 'all invariants'}"
    )
    if artifact.shrink_delta:
        print("shrink delta: " + "; ".join(artifact.shrink_delta))
    failures, skipped = replay_case(
        artifact.case,
        invariants=None if args.all_invariants else names,
        serve=not args.no_serve,
    )
    for name in skipped:
        print(f"skipped {name} (no live server)")
    if not failures:
        print("no longer fails: the recorded violation is fixed")
        return 0
    for failure in failures:
        print(f"still failing {failure.invariant}:")
        for violation in failure.violations:
            print(f"  - {violation}")
    return 1


def _cmd_promote(args: argparse.Namespace) -> int:
    from repro.qa.promote import promote_artifact

    path = promote_artifact(args.artifact, out_dir=args.out_dir,
                            name=args.name)
    print(f"tenant spec written to {path}")
    print(f"draw fleets with: repro-fleet run --corpus {args.out_dir}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        (name, get_invariant(name).description) for name in invariant_names()
    ]
    print(format_table(["invariant", "checks that"], rows,
                       title="Registered QA invariants"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-qa`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-qa",
        description="Property-based fuzzing + differential QA gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="fuzz seeds through the invariant gate")
    run.add_argument("--seeds", type=int, default=25,
                     help="number of fuzz seeds to evaluate (default 25)")
    run.add_argument("--start-seed", type=int, default=0,
                     help="first seed of the range (default 0)")
    run.add_argument("--time-budget", type=float, default=None, metavar="S",
                     help="stop starting new cases after S seconds")
    run.add_argument("--artifacts", default=DEFAULT_ARTIFACT_DIR,
                     help=f"artifact directory (default {DEFAULT_ARTIFACT_DIR})")
    run.add_argument("--invariants", default=None,
                     help="comma-separated subset (default: all registered)")
    run.add_argument("--no-serve", action="store_true",
                     help="skip the serve differentials (no server needed)")
    run.add_argument("--batch-prefill", action="store_true",
                     help="fill every case's base/high fixed-frequency "
                          "results from one batched simulation "
                          "(repro.sim.batch) before evaluating invariants")
    run.add_argument("--no-shrink", action="store_true",
                     help="dump the failing case without minimizing it")
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser("replay", help="re-evaluate a failure artifact")
    replay.add_argument("artifact", help="path written by a failing run")
    replay.add_argument("--all-invariants", action="store_true",
                        help="evaluate every invariant, not just the "
                             "recorded failures")
    replay.add_argument("--no-serve", action="store_true",
                        help="skip the serve differentials")
    replay.set_defaults(func=_cmd_replay)

    promote = sub.add_parser(
        "promote", help="turn a failure artifact into a fleet tenant spec"
    )
    promote.add_argument("artifact", help="path written by a failing run")
    promote.add_argument("--out-dir", default="fleet-corpus",
                         help="corpus directory to write into "
                              "(default fleet-corpus)")
    promote.add_argument("--name", default=None,
                         help="tenant name (default: derived from the seed)")
    promote.set_defaults(func=_cmd_promote)

    listing = sub.add_parser("list-invariants",
                             help="print the invariant registry")
    listing.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
