"""QA orchestration: fuzz, evaluate, shrink, dump, report.

:func:`run_qa` is the engine behind ``repro-qa run``: it walks a seed
range, builds each fuzz case, evaluates the selected invariants over a
shared :class:`~repro.qa.context.CaseContext` (one live serve harness is
reused across all cases), and on the first failure shrinks the workload
and writes a replayable artifact. A wall-clock budget turns the run into
a time-boxed smoke suitable for CI: the run stops *between* cases once
the budget is spent and reports how far it got.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.arch.specs import MachineSpec, haswell_i7_4770k
from repro.qa.artifacts import Failure, ReproArtifact, save_artifact
from repro.qa.context import CaseContext
from repro.qa.differential import SERVE_SKIPPED, ServeHarness
from repro.qa.fuzzer import FuzzCase, fuzz_case
from repro.qa.invariants import Invariant, get_invariant, invariant_names
from repro.qa.shrinker import shrink, shrink_summary

#: Default artifact directory of CLI runs.
DEFAULT_ARTIFACT_DIR = "qa-artifacts"


@dataclass
class CaseOutcome:
    """What one fuzz case did under the invariant set."""

    seed: int
    failures: List[Failure] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class QaReport:
    """The result of one QA run."""

    outcomes: List[CaseOutcome] = field(default_factory=list)
    invariants: List[str] = field(default_factory=list)
    artifact: Optional[ReproArtifact] = None
    artifact_path: Optional[Path] = None
    elapsed_s: float = 0.0
    #: True when the time budget stopped the run before the seed range ended.
    time_boxed: bool = False
    #: True when the serve differentials ran against a live server.
    serve_live: bool = False

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def cases_run(self) -> int:
        return len(self.outcomes)


def evaluate_case(
    case: FuzzCase,
    invariants: Sequence[Invariant],
    spec: Optional[MachineSpec] = None,
    serve_client=None,
    context: Optional[CaseContext] = None,
) -> Tuple[List[Failure], List[str]]:
    """Evaluate ``invariants`` on ``case``; return (failures, skipped).

    ``context`` lets a caller reuse a prebuilt (possibly prefilled)
    :class:`CaseContext` instead of simulating lazily from scratch.
    """
    if context is None:
        context = CaseContext(case, spec=spec, serve_client=serve_client)
    failures: List[Failure] = []
    skipped: List[str] = []
    for invariant in invariants:
        violations = invariant.evaluate(context)
        if violations == [SERVE_SKIPPED]:
            skipped.append(invariant.name)
        elif violations:
            failures.append(
                Failure(invariant=invariant.name, violations=violations)
            )
    return failures, skipped


def resolve_invariants(names: Optional[Sequence[str]]) -> List[Invariant]:
    """Selection -> Invariant objects (all registered when None)."""
    selected = list(names) if names else invariant_names()
    return [get_invariant(name) for name in selected]


def run_qa(
    seeds: Sequence[int],
    invariants: Optional[Sequence[str]] = None,
    time_budget_s: Optional[float] = None,
    artifact_dir: Optional[str] = DEFAULT_ARTIFACT_DIR,
    spec: Optional[MachineSpec] = None,
    serve: bool = True,
    shrink_failures: bool = True,
    stop_on_failure: bool = True,
    batch_prefill: bool = False,
    log: Callable[[str], None] = lambda line: None,
) -> QaReport:
    """Fuzz ``seeds`` through the invariant gate; shrink + dump failures.

    ``serve=False`` (or a platform where the server cannot start) runs
    without the serve differentials — they are reported per-case under
    ``skipped``, never silently passed.

    ``batch_prefill=True`` builds every seed's case up front and fills
    the whole corpus's base/high fixed-frequency results from one
    :func:`repro.sim.batch.simulate_batch` call
    (:meth:`CaseContext.prefill`) before evaluation starts; the per-case
    invariant walk then hits warm memo entries. Results are identical —
    the ``batch-single-identity`` invariant is the proof — and the
    prefill wall time counts against the time budget.
    """
    resolved = resolve_invariants(invariants)
    spec = spec or haswell_i7_4770k()
    report = QaReport(invariants=[inv.name for inv in resolved])
    started = time.perf_counter()
    harness: Optional[ServeHarness] = None
    needs_serve = serve and any(
        inv.name.startswith("diff-serve") for inv in resolved
    )
    try:
        if needs_serve:
            try:
                harness = ServeHarness()
                report.serve_live = True
            except Exception as exc:  # no loop/socket support on this box
                log(f"serve harness unavailable ({exc}); serve diffs skipped")
        client = harness.client if harness is not None else None
        contexts: dict = {}
        if batch_prefill:
            for seed in seeds:
                case = fuzz_case(seed, spec=spec)
                contexts[seed] = CaseContext(
                    case, spec=spec, serve_client=client
                )
            filled = CaseContext.prefill(list(contexts.values()))
            log(
                f"prefilled {filled} result(s) for {len(contexts)} case(s) "
                "from one batched simulation"
            )
        for seed in seeds:
            if (
                time_budget_s is not None
                and time.perf_counter() - started >= time_budget_s
            ):
                report.time_boxed = True
                log(
                    f"time budget ({time_budget_s:.0f}s) spent after "
                    f"{report.cases_run} case(s); stopping"
                )
                break
            context = contexts.get(seed)
            case = context.case if context is not None else fuzz_case(seed, spec=spec)
            case_started = time.perf_counter()
            failures, skipped = evaluate_case(
                case, resolved, spec=spec, serve_client=client,
                context=context,
            )
            outcome = CaseOutcome(
                seed=seed,
                failures=failures,
                skipped=skipped,
                wall_s=time.perf_counter() - case_started,
            )
            report.outcomes.append(outcome)
            if outcome.ok:
                log(f"seed {seed}: ok ({outcome.wall_s:.2f}s)")
                continue
            names = [failure.invariant for failure in failures]
            log(f"seed {seed}: FAIL {names}")
            artifact = _shrink_and_record(
                case, failures, resolved, spec, client, shrink_failures, log
            )
            report.artifact = artifact
            if artifact_dir is not None:
                report.artifact_path = save_artifact(artifact, artifact_dir)
                log(f"replayable artifact: {report.artifact_path}")
            if stop_on_failure:
                break
    finally:
        if harness is not None:
            harness.close()
    report.elapsed_s = time.perf_counter() - started
    return report


def _shrink_and_record(
    case: FuzzCase,
    failures: List[Failure],
    invariants: Sequence[Invariant],
    spec: MachineSpec,
    client,
    shrink_failures: bool,
    log: Callable[[str], None],
) -> ReproArtifact:
    """Minimize a failing case and package it as an artifact."""
    failing_names = [failure.invariant for failure in failures]
    shrunk = case
    if shrink_failures:

        def still_failing(candidate: FuzzCase) -> Set[str]:
            candidate_failures, _ = evaluate_case(
                candidate, invariants, spec=spec, serve_client=client
            )
            return {failure.invariant for failure in candidate_failures}

        shrunk = shrink(case, failing_names, still_failing)
    # Record the violations of the *shrunk* case: that is what replay
    # re-evaluates, and shrinking may have narrowed the failure set.
    final_failures, _ = evaluate_case(
        shrunk, invariants, spec=spec, serve_client=client
    )
    relevant = [
        failure for failure in final_failures if failure.invariant in failing_names
    ] or final_failures
    delta = shrink_summary(case, shrunk)
    if delta:
        log("shrunk: " + "; ".join(delta))
    return ReproArtifact(
        case=shrunk,
        failures=relevant,
        original=case if shrunk is not case else None,
        shrink_delta=delta,
    )


def replay_case(
    case: FuzzCase,
    invariants: Optional[Sequence[str]] = None,
    spec: Optional[MachineSpec] = None,
    serve: bool = True,
) -> Tuple[List[Failure], List[str]]:
    """Re-evaluate a (loaded) case; return (failures, skipped)."""
    resolved = resolve_invariants(invariants)
    needs_serve = serve and any(
        inv.name.startswith("diff-serve") for inv in resolved
    )
    if not needs_serve:
        return evaluate_case(case, resolved, spec=spec)
    try:
        with ServeHarness() as harness:
            return evaluate_case(
                case, resolved, spec=spec, serve_client=harness.client
            )
    except Exception:
        return evaluate_case(case, resolved, spec=spec)
