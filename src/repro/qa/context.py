"""Shared per-case evaluation state.

Invariants are independent predicates, but most of them consume the same
expensive inputs — the simulated traces of one fuzz case at a couple of
frequencies, their epoch decompositions, a managed run's decision log.
:class:`CaseContext` owns those inputs and materializes each one lazily,
exactly once, so composing N invariants over a case costs one simulation
per (frequency, engine) pair rather than N.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.specs import MachineSpec, haswell_i7_4770k
from repro.core.epochs import Epoch, extract_epochs
from repro.energy.manager import EnergyManager, ManagerDecision
from repro.qa.fuzzer import FuzzCase
from repro.sim.run import SimulationResult, simulate, simulate_managed
from repro.sim.trace import SimulationTrace
from repro.workloads.program import Program


class CaseContext:
    """Lazily-simulated views of one fuzz case.

    ``serve_client`` is an optional live :class:`repro.serve.client
    .ServeClient` the serve differentials use; contexts without one make
    those invariants report themselves as skipped.
    """

    def __init__(
        self,
        case: FuzzCase,
        spec: Optional[MachineSpec] = None,
        serve_client=None,
    ) -> None:
        self.case = case
        self.spec = spec or haswell_i7_4770k()
        self.serve_client = serve_client
        self._program: Optional[Program] = None
        self._results: Dict[Tuple[float, str], SimulationResult] = {}
        self._epochs: Dict[Tuple[float, str], List[Epoch]] = {}
        self._managed: Dict[
            Tuple[str, bool], Tuple[SimulationTrace, List[ManagerDecision]]
        ] = {}

    @property
    def program(self) -> Program:
        """The case's deterministic program (built once)."""
        if self._program is None:
            self._program = self.case.program()
        return self._program

    def result(
        self, freq_ghz: Optional[float] = None, engine: str = "fast"
    ) -> SimulationResult:
        """Fixed-frequency simulation at ``freq_ghz`` (default: base)."""
        freq = self.case.base_freq_ghz if freq_ghz is None else freq_ghz
        key = (freq, engine)
        if key not in self._results:
            self._results[key] = simulate(
                self.program,
                freq,
                spec=self.spec,
                quantum_ns=self.case.quantum_ns,
                engine=engine,
            )
        return self._results[key]

    def epochs(
        self, freq_ghz: Optional[float] = None, engine: str = "fast"
    ) -> List[Epoch]:
        """Epoch decomposition of the trace at ``freq_ghz``."""
        freq = self.case.base_freq_ghz if freq_ghz is None else freq_ghz
        key = (freq, engine)
        if key not in self._epochs:
            self._epochs[key] = extract_epochs(self.result(freq, engine).trace.events)
        return self._epochs[key]

    def managed(
        self, engine: str = "fast", sweep: bool = True
    ) -> Tuple[SimulationTrace, List[ManagerDecision]]:
        """Managed run under the case's energy manager: (trace, decisions).

        ``sweep`` selects the manager's candidate-evaluation engine (one
        sweep-kernel call vs. the per-frequency scalar loop); both must
        produce identical decisions, which the sweep differential checks.
        """
        key = (engine, sweep)
        if key not in self._managed:
            manager = EnergyManager(self.spec, self.case.manager, sweep=sweep)
            result = simulate_managed(
                self.program,
                manager,
                spec=self.spec,
                quantum_ns=self.case.quantum_ns,
                engine=engine,
            )
            self._managed[key] = (result.trace, list(manager.decisions))
        return self._managed[key]

    @classmethod
    def prefill(cls, contexts: List["CaseContext"], engine: str = "fast") -> int:
        """Fill many contexts' base/high results from one batched call.

        Simulates every (context, frequency) pair still missing from the
        contexts' memo maps through :func:`repro.sim.batch.simulate_batch`
        — one lane per pair, grouped per context's program — and stores
        the results exactly where :meth:`result` would have. Subsequent
        :meth:`result`/:meth:`epochs` calls at those frequencies are warm
        hits, so a whole fuzz corpus costs one batched simulation instead
        of two lazy ones per case. Returns the number of results filled.
        """
        from repro.sim.batch import BatchInstance, simulate_batch

        wanted: List[Tuple["CaseContext", Tuple[float, str]]] = []
        instances = []
        for context in contexts:
            freqs = dict.fromkeys(
                (context.case.base_freq_ghz, context.case.high_freq_ghz)
            )
            for freq in freqs:
                key = (freq, engine)
                if key in context._results:
                    continue
                wanted.append((context, key))
                instances.append(
                    BatchInstance(
                        program=context.program,
                        freq_ghz=freq,
                        spec=context.spec,
                        quantum_ns=context.case.quantum_ns,
                        engine=engine,
                        label=f"seed{context.case.seed}@{freq}",
                    )
                )
        if not instances:
            return 0
        for (context, key), result in zip(wanted, simulate_batch(instances)):
            context._results[key] = result
        return len(wanted)

    def target_ladder(self) -> List[float]:
        """Ascending target frequencies the prediction invariants sweep.

        A five-point subset of the spec's set points (ends, midpoint and
        the case's own pair) — enough to catch non-monotone scaling
        without evaluating all 25 set points per predictor per case.
        """
        freqs = self.spec.frequencies()
        picks = {
            freqs[0],
            freqs[len(freqs) // 2],
            freqs[-1],
            self.case.base_freq_ghz,
            self.case.high_freq_ghz,
        }
        return sorted(picks)
