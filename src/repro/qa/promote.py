"""Promote a QA failure artifact into a fleet tenant spec.

A shrunk fuzz case that broke an invariant is, by construction, a
workload shape the pipeline found interesting — exactly the kind of
tenant a fleet population should include so regressions surface at
scale, not just in the single-case gate. ``repro-qa promote`` turns an
artifact into a ``repro-fleet-tenant`` JSON spec (the
:func:`repro.fleet.tenants.tenant_from_fuzz_case` adapter) that
``repro-fleet --corpus DIR`` merges into the tenant corpus.

The promoted tenant keeps the case's manager config and base frequency
and gets an SLA slightly above the manager's tolerable slowdown — the
governor is *supposed* to land under it, so a promoted tenant missing
its SLA in a fleet run is a finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.common.errors import ConfigError
from repro.fleet.tenants import (
    TenantSpec,
    tenant_from_fuzz_case,
    tenant_spec_to_dict,
)
from repro.qa.artifacts import load_artifact


def promote_artifact(
    artifact_path: str,
    out_dir: str = "fleet-corpus",
    name: Optional[str] = None,
) -> Path:
    """Write ``artifact_path``'s case as a tenant spec; return the path."""
    artifact = load_artifact(artifact_path)
    tenant = tenant_from_fuzz_case(artifact.case, name=name)
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    out_path = directory / f"{tenant.name}.json"
    out_path.write_text(
        json.dumps(tenant_spec_to_dict(tenant), indent=2, sort_keys=True)
        + "\n"
    )
    return out_path


def promoted_tenant(path: str) -> TenantSpec:
    """Load one promoted spec back (convenience for tests/tools)."""
    from repro.fleet.tenants import tenant_spec_from_dict

    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ConfigError(f"unreadable tenant spec {path}: {exc}")
    return tenant_spec_from_dict(payload)
