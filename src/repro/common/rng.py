"""Deterministic random-number streams.

Every stochastic choice in the simulator (DRAM bank conflicts, workload
shapes, lock contention jitter) must be *identical* across simulations of the
same program at different frequencies — otherwise prediction error would be
polluted by workload noise rather than reflecting model fidelity, which is
the quantity the paper measures.

:func:`rng_stream` derives an independent :class:`numpy.random.Generator`
from a root seed and a tuple of string/int keys, so that every component gets
its own reproducible stream regardless of the order components are
constructed in.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

_Key = Union[str, int]


def rng_stream(seed: int, *keys: _Key) -> np.random.Generator:
    """Return a deterministic, independent RNG stream.

    Parameters
    ----------
    seed:
        Root seed (one per benchmark/program, typically).
    keys:
        Hierarchical identifiers, e.g. ``("thread", 3, "mem")``. Different
        key tuples yield statistically independent streams; the same tuple
        always yields the same stream.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode("ascii"))
    for key in keys:
        hasher.update(b"/")
        hasher.update(str(key).encode("utf-8"))
    digest = hasher.digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def derive_seed(seed: int, *keys: _Key) -> int:
    """Derive a child integer seed from a root seed and keys.

    Useful when a component wants to store a seed (cheap, picklable) rather
    than a generator object.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode("ascii"))
    for key in keys:
        hasher.update(b"/")
        hasher.update(str(key).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")
