"""Small argument-validation helpers used by configuration dataclasses."""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

from repro.common.errors import ConfigError


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_JOBS``, else 1.

    Shared by every ``--jobs`` CLI surface (``repro-experiments``,
    ``repro-fleet``, the grid drivers) so one environment variable
    widens them all consistently.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from exc
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    return jobs


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ConfigError(message)


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive; return it."""
    if value <= 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is >= 0; return it."""
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]; return it."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Validate that ``value`` is a positive power of two; return it."""
    if value <= 0 or value & (value - 1) != 0:
        raise ConfigError(f"{name} must be a positive power of two, got {value!r}")
    return value


def check_in(name: str, value: object, allowed: Iterable[object]) -> object:
    """Validate that ``value`` is one of ``allowed``; return it."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_sorted(name: str, values: Sequence[float]) -> Sequence[float]:
    """Validate that ``values`` is non-decreasing; return it."""
    for left, right in zip(values, values[1:]):
        if right < left:
            raise ConfigError(f"{name} must be sorted non-decreasing, got {values!r}")
    return values
