"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library problems without masking
programming errors (``TypeError``, ``KeyError``, ...).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state.

    Examples: a thread blocking while holding the scheduler in an
    inconsistent state, a deadlock among simulated threads, or an event
    scheduled in the past.
    """


class TraceError(ReproError):
    """A simulation trace is malformed or inconsistent.

    Raised by the epoch decomposition and the predictors when the futex or
    interval records they consume violate their invariants (e.g. epochs out
    of order, a thread active in an epoch without counter samples).
    """


class PredictionError(ReproError):
    """A DVFS predictor was asked something it cannot answer.

    Examples: predicting for a frequency outside the supported DVFS range,
    or invoking a managed-runtime-specific predictor on a trace that lacks
    garbage-collection phase markers.
    """
