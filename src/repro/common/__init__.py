"""Shared infrastructure: units, errors, deterministic RNG, validation, tables.

Conventions used throughout the code base (see :mod:`repro.common.units`):

* time is expressed in **nanoseconds** (``float``),
* frequency in **GHz** (so ``cycles = time_ns * freq_ghz``),
* energy in **joules**, power in **watts**,
* memory sizes in **bytes**.
"""

from repro.common.errors import (
    ConfigError,
    PredictionError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.common.rng import rng_stream
from repro.common.units import (
    GHZ,
    MHZ,
    cycles_to_ns,
    ns_to_cycles,
    ns_to_ms,
    ns_to_s,
    ms_to_ns,
    s_to_ns,
    us_to_ns,
)

__all__ = [
    "ConfigError",
    "PredictionError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "rng_stream",
    "GHZ",
    "MHZ",
    "cycles_to_ns",
    "ns_to_cycles",
    "ns_to_ms",
    "ns_to_s",
    "ms_to_ns",
    "s_to_ns",
    "us_to_ns",
]
