"""Opt-in cProfile wrapping for the command-line tools.

Both CLIs accept ``--profile [PATH]`` and honour the ``REPRO_PROFILE``
environment variable (``1`` enables with the tool's default dump path; any
other non-empty value is used as the path). The profile is written as a
binary ``.pstats`` dump, readable with ``python -m pstats`` or snakeviz.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, TypeVar

T = TypeVar("T")

_UNSET = object()


def resolve_profile_path(
    cli_value: object, default_path: str
) -> Optional[str]:
    """The ``.pstats`` path to write, or None when profiling is off.

    ``cli_value`` is the ``--profile`` argument: absent (``None`` sentinel
    handled by the caller passing :data:`UNSET`), given bare, or given with
    an explicit path. The environment variable is the fallback when the
    flag is absent.
    """
    if cli_value is not _UNSET:
        return default_path if cli_value is None else str(cli_value)
    env = os.environ.get("REPRO_PROFILE", "")
    if not env or env == "0":
        return None
    return default_path if env in ("1", "true", "yes") else env


#: Sentinel for "--profile not given on the command line".
UNSET = _UNSET


def run_maybe_profiled(
    func: Callable[[], T], path: Optional[str]
) -> T:
    """Run ``func``, dumping a cProfile ``.pstats`` to ``path`` if set."""
    if path is None:
        return func()
    import cProfile

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(func)
    finally:
        profiler.dump_stats(path)
        print(f"profile written to {path} (inspect with python -m pstats)")
