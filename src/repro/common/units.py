"""Unit conventions and conversion helpers.

The library uses a single set of base units everywhere:

* **time**: nanoseconds (``float``),
* **frequency**: GHz,
* **energy**: joules,
* **power**: watts.

Choosing GHz and nanoseconds makes the most frequent conversion trivial:
``cycles = time_ns * freq_ghz`` and ``time_ns = cycles / freq_ghz``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

#: One GHz expressed in GHz (identity anchor; useful for readability).
GHZ = 1.0

#: One MHz expressed in GHz.
MHZ = 1.0e-3

_NS_PER_US = 1.0e3
_NS_PER_MS = 1.0e6
_NS_PER_S = 1.0e9


def ns_to_cycles(time_ns: float, freq_ghz: float) -> float:
    """Convert a duration in nanoseconds to clock cycles at ``freq_ghz``."""
    _check_frequency(freq_ghz)
    return time_ns * freq_ghz


def cycles_to_ns(cycles: float, freq_ghz: float) -> float:
    """Convert a cycle count at ``freq_ghz`` to a duration in nanoseconds."""
    _check_frequency(freq_ghz)
    return cycles / freq_ghz


def ns_to_ms(time_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return time_ns / _NS_PER_MS


def ms_to_ns(time_ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return time_ms * _NS_PER_MS


def us_to_ns(time_us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return time_us * _NS_PER_US


def ns_to_s(time_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return time_ns / _NS_PER_S


def s_to_ns(time_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return time_s * _NS_PER_S


def _check_frequency(freq_ghz: float) -> None:
    if freq_ghz <= 0.0:
        raise ConfigError(f"frequency must be positive, got {freq_ghz} GHz")
