"""Multi-backend content-addressed key/value store.

The persistent result cache of :mod:`repro.experiments.cache` and the
cross-worker prediction cache of :mod:`repro.serve.predcache` share one
storage discipline:

* **Content-addressed keys.** :func:`stable_hash` reduces an arbitrary
  configuration object to a SHA-256 over its canonical JSON form
  (:func:`canonical`), so equal inputs hash identically regardless of
  dict insertion order or dataclass field order, and any input change
  produces a fresh key — stale values are orphaned, never returned.
* **Crash/corruption safety.** Disk writes are published with an atomic
  ``os.replace`` (:func:`atomic_write_text`); reads treat *any* defect —
  truncation, bit flips, a key mismatch from a hash-prefix collision —
  as a miss and drop the offender best-effort.

On top of those primitives this module layers composable backends:

:class:`MemoryLRU`
    A per-process LRU dict — the first tier of a read path; no I/O.
:class:`FileStore`
    One JSON envelope file per key in a shared directory. Multiple
    *processes* can read and write the same directory concurrently:
    writers publish atomically and both sides of a racing write store
    identical bytes for a key (content addressing), so the last rename
    wins with an indistinguishable result. The operating system's page
    cache keeps hot entries memory-speed — this is the file/mmap-backed
    shared tier that lets serve workers exchange results.
:class:`TieredStore`
    A read-through/write-through stack (typically LRU over FileStore):
    gets probe tiers in order and promote hits upward; puts write every
    tier.

Values are opaque text (callers serialize; the prediction cache stores
pre-encoded JSON fragments so a hit replays the cold compute's bytes
exactly).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

_PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Canonical hashing
# ----------------------------------------------------------------------


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure.

    Dataclasses become ``{field: value}`` dicts (recursively), enums their
    values, tuples/sets ordered lists — so two objects that compare equal
    canonicalize identically regardless of construction or field order.
    Unsupported types raise ``TypeError``: a cache key must never silently
    depend on ``repr`` noise such as memory addresses.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return canonical(obj.value)
    if isinstance(obj, dict):
        return {str(key): canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(item) for item in obj)
    if isinstance(obj, Path):
        return str(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for hashing")


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON form.

    Invariant under dict insertion order and dataclass field order;
    sensitive to every value reachable from ``obj``.
    """
    payload = json.dumps(
        canonical(obj), sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Atomic file plumbing
# ----------------------------------------------------------------------


def atomic_write_text(path: Path, text: str, suffix: str = ".json") -> None:
    """Publish ``text`` at ``path`` via a same-directory atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-", suffix=suffix
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        unlink_quiet(Path(tmp))
        raise


def unlink_quiet(path: Path) -> None:
    """Remove a file, swallowing the races removal can lose."""
    try:
        path.unlink()
    except OSError:
        pass


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


@dataclass
class StoreStats:
    """Per-instance counters of one backend (or tier stack)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found but rejected (corrupt envelope, key mismatch...);
    #: each rejection is also a miss.
    errors: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class MemoryLRU:
    """In-process LRU text store (the zero-I/O first tier)."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = StoreStats()
        self._entries: "OrderedDict[str, str]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[str]:
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: str, value: str) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def drop(self, key: str) -> None:
        """Forget one entry if present (used to evict rejected values)."""
        self._entries.pop(key, None)

    def clear(self) -> int:
        """Drop every entry; return how many were held."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped


class FileStore:
    """Shared directory of ``{"key", "value"}`` envelope files.

    The envelope carries the *full* key, so a hash-prefix filename
    collision or a bit-flipped file is detected at read time and treated
    as a miss (the offender is dropped best-effort). Safe for concurrent
    multi-process use: writes are atomic renames and identical keys store
    identical bytes.
    """

    def __init__(self, root: _PathLike, prefix: str = "kv") -> None:
        self.root = Path(root)
        self.prefix = prefix
        self.stats = StoreStats()

    def path_for(self, key: str) -> Path:
        return self.root / f"{self.prefix}-{key[:32]}.json"

    def get(self, key: str) -> Optional[str]:
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            return None
        except UnicodeDecodeError:
            # Bit damage bad enough to break the text encoding: same
            # treatment as a corrupt envelope below.
            self.stats.errors += 1
            self.stats.misses += 1
            unlink_quiet(path)
            return None
        try:
            envelope = json.loads(raw)
            if not isinstance(envelope, dict) or envelope.get("key") != key:
                raise ValueError("key mismatch")
            value = envelope["value"]
            if not isinstance(value, str):
                raise ValueError("non-text value")
        except Exception:
            self.stats.errors += 1
            self.stats.misses += 1
            unlink_quiet(path)
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: str) -> None:
        envelope = json.dumps(
            {"key": key, "value": value}, separators=(",", ":")
        )
        atomic_write_text(self.path_for(key), envelope)
        self.stats.stores += 1

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for p in self.root.iterdir()
            if p.name.startswith(f"{self.prefix}-") and p.suffix == ".json"
        )

    def drop(self, key: str) -> None:
        """Remove one entry if present (used to evict rejected values)."""
        unlink_quiet(self.path_for(key))

    def clear(self) -> int:
        """Remove every entry of this prefix; return files removed."""
        removed = 0
        if self.root.is_dir():
            for path in sorted(self.root.iterdir()):
                if (
                    path.is_file()
                    and path.name.startswith(f"{self.prefix}-")
                    and path.suffix == ".json"
                ):
                    unlink_quiet(path)
                    removed += 1
        return removed


class TieredStore:
    """Read-through/write-through stack of backends (fastest first)."""

    def __init__(self, tiers: Sequence[Any]) -> None:
        if not tiers:
            raise ValueError("TieredStore needs at least one tier")
        self.tiers = list(tiers)
        self.stats = StoreStats()

    def get(self, key: str) -> Optional[str]:
        for i, tier in enumerate(self.tiers):
            value = tier.get(key)
            if value is not None:
                # Promote into the faster tiers so the next get is cheap.
                for upper in self.tiers[:i]:
                    upper.put(key, value)
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return None

    def put(self, key: str, value: str) -> None:
        for tier in self.tiers:
            tier.put(key, value)
        self.stats.stores += 1

    def tier_stats(self) -> List[Dict[str, int]]:
        return [tier.stats.as_dict() for tier in self.tiers]

    def clear(self) -> int:
        """Clear every tier; return the entry count the *last* (most
        durable) tier reported dropping."""
        dropped = 0
        for tier in self.tiers:
            dropped = tier.clear()
        return dropped
