"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates the paper's tables and figures as text.
This module provides a dependency-free fixed-width table renderer plus a
small horizontal bar chart used to mimic the paper's figures in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    align_right: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    Cell values are converted with ``str``; floats should be pre-formatted by
    the caller so each experiment controls its own precision.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [len(header) for header in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_cell(text: str, width: int, right: bool) -> str:
        return text.rjust(width) if right else text.ljust(width)

    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        fmt_cell(header, widths[i], False) for i, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(
            " | ".join(
                fmt_cell(cell, widths[i], align_right and i > 0)
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used for figure-style output).

    Negative values draw to the left of a zero axis so signed prediction
    errors remain legible.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return title
    max_abs = max(abs(v) for v in values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar_len = int(round(abs(value) / max_abs * width))
        bar = ("-" if value < 0 else "+") * bar_len
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value:+.1f}{unit}"
        )
    return "\n".join(lines)
