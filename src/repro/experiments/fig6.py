"""Figure 6: per-benchmark slowdown and energy savings under the manager.

The energy manager (DEP+BURST inside) runs each benchmark with slowdown
thresholds of 5% and 10%. The paper reports average energy savings of 13%
and 19% for the memory-intensive group, achieved slowdowns close to the
thresholds, and small savings for the compute-intensive group.
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import ExperimentResult, mean, pct, pct_abs
from repro.experiments.runner import ExperimentRunner

#: Paper's memory-intensive group means.
PAPER_SAVINGS = {0.05: 0.13, 0.10: 0.19}


def work(config):
    """Ground-truth grid Figure 6 needs (parallel prefetch hook)."""
    from repro.experiments.parallel import fixed_items, managed_items

    return fixed_items(config.benchmarks, (4.0,)) + managed_items(
        config.benchmarks, config.thresholds
    )


def run(runner: ExperimentRunner) -> List[ExperimentResult]:
    """Regenerate Figure 6 (one table per threshold)."""
    config = runner.config
    results: List[ExperimentResult] = []
    for threshold in config.thresholds:
        result = ExperimentResult(
            experiment_id=f"Fig 6 ({threshold:.0%})",
            title=f"Energy manager at tolerable slowdown {threshold:.0%}",
            headers=[
                "benchmark",
                "type",
                "slowdown",
                "energy saving",
                "mean freq (GHz)",
            ],
        )
        savings_memory: List[float] = []
        savings_compute: List[float] = []
        for benchmark in config.benchmarks:
            baseline = runner.fixed_run(benchmark, 4.0)
            managed = runner.managed_run(benchmark, threshold)
            slowdown = managed.total_ns / baseline.total_ns - 1.0
            saving = 1.0 - managed.energy_j / baseline.energy_j
            bundle = runner.bundle(benchmark)
            if bundle.is_memory_intensive:
                savings_memory.append(saving)
            else:
                savings_compute.append(saving)
            result.rows.append(
                (
                    benchmark,
                    bundle.type_label,
                    pct(slowdown),
                    pct(saving),
                    f"{managed.mean_freq_ghz:.2f}",
                )
            )
        if savings_memory:
            result.rows.append(
                (
                    "MEAN (memory)",
                    "M",
                    "",
                    pct(mean(savings_memory)),
                    "",
                )
            )
            result.rows.append(
                (
                    "paper (memory)",
                    "M",
                    pct(threshold),
                    pct_abs(PAPER_SAVINGS.get(threshold, float("nan"))),
                    "",
                )
            )
        if savings_compute:
            result.rows.append(
                ("MEAN (compute)", "C", "", pct(mean(savings_compute)), "")
            )
        results.append(result)
    return results
