"""Table II: simulated system parameters (static configuration dump)."""

from __future__ import annotations

from repro.arch.specs import haswell_i7_4770k
from repro.energy.vftable import VfTable
from repro.experiments.report import ExperimentResult


def work(config):
    """Table II is static configuration: nothing to simulate."""
    return ()


def run(runner=None) -> ExperimentResult:
    """Regenerate Table II from the machine specification.

    ``runner`` is accepted for interface uniformity but unused: the table
    is static configuration.
    """
    spec = haswell_i7_4770k()
    result = ExperimentResult(
        experiment_id="Table II",
        title="Simulated system parameters (Haswell i7-4770K-like)",
        headers=["component", "parameters"],
    )
    for component, parameters in spec.table_rows():
        result.rows.append((component, parameters))
    vf = VfTable(spec)
    sample = [f"{f:.3f} GHz @ {v:.3f} V" for f, v in vf.rows()[:: 8]]
    result.rows.append(("V/f points", "; ".join(sample)))
    return result
