"""Fleet policy study: the policy × power-cap grid, one drawn fleet.

The paper evaluates its predictor inside one JVM at a time; this driver
asks what the same prediction machinery buys a *fleet*: hundreds of
energy-managed tenants arriving on an open-loop process, stepped
through :mod:`repro.fleet` under every registered policy at every power
cap of :data:`CAPS_W` — the full grid of
:mod:`repro.fleet.grid` over one drawn population. Profiles are built
once (batched, multiprocess when ``--jobs`` asks, persisted in the
fleet profile cache when the suite's cache is on) and shared by every
cell. Reported per cell: aggregate energy against the
all-max-frequency baseline, mean and tail slowdown, SLA misses, and
peak fleet power — plus the per-tenant static-oracle bound
(:mod:`repro.energy.static_oracle`), the best any frequency-per-tenant
assignment could do with hindsight (cap-independent, so one row).

The run is deterministic from the study seed at any ``--jobs`` width:
the same table — and the same ``--out`` figure JSON from the
``python -m repro.experiments.fleet_study`` renderer the CI smoke
byte-compares — regenerates identically on every invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.experiments.report import ExperimentResult, pct_abs
from repro.experiments.runner import ExperimentRunner
from repro.fleet.grid import DEFAULT_CAPS_W, GridConfig, grid_bytes, run_grid
from repro.fleet.profile_cache import ProfileCache

#: Fleet drawn for the study (big enough that every builtin family and
#: both quanta appear; small enough for the experiment suite's budget).
FLEET_TENANTS = 256
#: Study seed: tenant draw + arrival process.
FLEET_SEED = 42
#: Power caps (W) of the grid — from starved to unconstrained.
CAPS_W = DEFAULT_CAPS_W


def work(config):
    """Fleet profiles are tenant-shaped, not benchmark-shaped: nothing
    in the shared ground-truth cache applies, so there is no prefetch."""
    return []


def _grid_config(tenants: int = None, seed: int = None) -> GridConfig:
    return GridConfig(
        tenants=FLEET_TENANTS if tenants is None else tenants,
        seed=FLEET_SEED if seed is None else seed,
        caps_w=CAPS_W,
    )


def profile_cache_for(runner: ExperimentRunner) -> Optional[ProfileCache]:
    """The fleet profile cache riding the suite's result cache.

    Lives under the result cache's directory (so ``--cache-dir`` and
    ``REPRO_CACHE_DIR`` govern both and ``--no-cache`` disables both).
    """
    if getattr(runner, "cache", None) is None:
        return None
    return ProfileCache(Path(runner.cache.root) / "fleet-profiles")


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Evaluate every fleet policy at every cap over one population."""
    config = _grid_config()
    payload = run_grid(
        config,
        jobs=getattr(runner, "jobs", 1),
        cache=profile_cache_for(runner),
    )
    result = ExperimentResult(
        experiment_id="Fleet study",
        title=(
            f"Fleet policy × cap grid, {FLEET_TENANTS} tenants, seed "
            f"{FLEET_SEED}, caps {'/'.join(f'{c:.0f}' for c in sorted(CAPS_W))} W"
        ),
        headers=["policy", "cap W", "energy (J)", "vs all-max",
                 "mean slowdown", "p99 slowdown", "SLA miss", "peak W"],
        notes="static-oracle row is the per-tenant hindsight bound, not "
        "a schedulable policy; capped policies respect the fleet power "
        "cap, uncapped ones ignore it (their rows repeat across caps)",
    )
    oracle_energy = None
    for cell in payload["cells"]:
        oracle_energy = cell["oracle_energy_j"]
        capped = "" if cell["cap_violations"] == 0 else " (CAP!)"
        result.rows.append(
            (
                cell["policy"],
                f"{cell['power_cap_w']:.0f}",
                f"{cell['energy_j']:.3f}",
                pct_abs(cell["energy_saving_vs_max"]) + " saved",
                pct_abs(cell["mean_slowdown"]),
                pct_abs(cell["p99_slowdown"]),
                pct_abs(cell["sla_miss_rate"]),
                f"{cell['peak_power_w']:.0f}{capped}",
            )
        )
    if oracle_energy is not None:
        result.rows.append(
            ("static-oracle/tenant", "", f"{oracle_energy:.3f}",
             "", "", "", "", "")
        )
    return result


def write_figure(path, runner: ExperimentRunner, jobs: int = 1):
    """Write the grid figure JSON; return the payload."""
    payload = run_grid(
        _grid_config(), jobs=jobs, cache=profile_cache_for(runner)
    )
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_bytes(grid_bytes(payload))
    return payload


def main(argv=None) -> int:
    """``python -m repro.experiments.fleet_study --out fleet_grid.json``.

    The standalone figure renderer the CI smoke job runs serially and
    at ``--jobs 4`` and byte-compares (execution diagnostics are
    excluded from the figure, so the two runs must match exactly).
    """
    parser = argparse.ArgumentParser(
        description="Render the fleet policy x power-cap grid figure JSON."
    )
    parser.add_argument("--out", required=True, help="output JSON path")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the profile build and the grid cells",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent caches",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent cache location (default: REPRO_CACHE_DIR)",
    )
    args = parser.parse_args(argv)
    from repro.experiments.cache import ResultCache, default_cache_dir
    from repro.experiments.runner import get_runner

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = get_runner(cache=cache)
    payload = write_figure(args.out, runner, jobs=args.jobs)
    print(f"wrote {args.out}: {len(payload['cells'])} grid cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
