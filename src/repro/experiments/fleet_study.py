"""Fleet policy study: prediction-driven policies vs. the static oracle.

The paper evaluates its predictor inside one JVM at a time; this driver
asks what the same prediction machinery buys a *fleet*: hundreds of
energy-managed tenants arriving on an open-loop process, stepped
through :mod:`repro.fleet` under every registered policy over one drawn
population (profiles built once, batched, and shared). Reported per
policy: aggregate energy against the all-max-frequency baseline, mean
and tail slowdown, SLA misses, and peak fleet power — plus the
per-tenant static-oracle bound (:mod:`repro.energy.static_oracle`
applied to each tenant's profile), the best any frequency-per-tenant
assignment could do with hindsight.

The run is deterministic from the study seed: the same table
regenerates byte-identical on every invocation.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, pct_abs
from repro.experiments.runner import ExperimentRunner
from repro.fleet.engine import FleetConfig, run_fleet
from repro.fleet.policy import policy_names
from repro.fleet.profiles import ProfileStore

#: Fleet drawn for the study (big enough that every builtin family and
#: both quanta appear; small enough for the experiment suite's budget).
FLEET_TENANTS = 256
#: Study seed: tenant draw + arrival process.
FLEET_SEED = 42
#: Fleet power cap (W) the capped policies respect.
POWER_CAP_W = 400.0


def work(config):
    """Fleet profiles are tenant-shaped, not benchmark-shaped: nothing
    in the shared ground-truth cache applies, so there is no prefetch."""
    return []


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Compare every fleet policy over one drawn tenant population."""
    result = ExperimentResult(
        experiment_id="Fleet study",
        title=(
            f"Fleet policies, {FLEET_TENANTS} tenants, seed {FLEET_SEED}, "
            f"cap {POWER_CAP_W:.0f} W"
        ),
        headers=["policy", "energy (J)", "vs all-max", "mean slowdown",
                 "p99 slowdown", "SLA miss", "peak W"],
        notes="static-oracle row is the per-tenant hindsight bound, not "
        "a schedulable policy; capped policies respect the fleet power "
        "cap, uncapped ones ignore it",
    )
    store = ProfileStore()
    oracle = None
    for policy in policy_names():
        report = run_fleet(
            FleetConfig(
                tenants=FLEET_TENANTS,
                seed=FLEET_SEED,
                policy=policy,
                power_cap_w=POWER_CAP_W,
            ),
            store=store,
        )
        aggregate = report.aggregate
        oracle = report.oracle
        capped = "" if aggregate["cap_violations"] == 0 else " (CAP!)"
        result.rows.append(
            (
                policy,
                f"{aggregate['energy_j']:.3f}",
                pct_abs(aggregate["energy_saving_vs_max"]) + " saved",
                pct_abs(aggregate["mean_slowdown"]),
                pct_abs(aggregate["p99_slowdown"]),
                pct_abs(aggregate["sla_miss_rate"]),
                f"{aggregate['peak_power_w']:.0f}{capped}",
            )
        )
    if oracle is not None:
        result.rows.append(
            (
                "static-oracle/tenant",
                f"{oracle['energy_j']:.3f}",
                "",
                pct_abs(oracle["mean_slowdown"]),
                "",
                pct_abs(oracle["sla_miss_rate"]),
                "",
            )
        )
    return result
