"""Result containers and text rendering for experiment outputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.common.tables import format_table


@dataclass
class ExperimentResult:
    """One regenerated table/figure, as rows of formatted cells."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: str = ""

    def to_text(self) -> str:
        """Render the result as a fixed-width table with notes."""
        text = format_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += f"\nNote: {self.notes}"
        return text


def pct(value: float) -> str:
    """Format a ratio as a signed percent cell."""
    return f"{value:+.1%}"


def pct_abs(value: float) -> str:
    """Format a ratio as an unsigned percent cell."""
    return f"{value:.1%}"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (experiments always have non-empty inputs)."""
    return sum(values) / len(values)


def mean_abs(values: Sequence[float]) -> float:
    """Mean of absolute values — the paper's 'average absolute error'."""
    return mean([abs(v) for v in values])
