"""Parallel fan-out of ground-truth simulations over worker processes.

The experiment suite's cost is a grid of independent simulations:
(benchmark × frequency) fixed runs and (benchmark × threshold) managed
runs. Each cell is deterministic — the simulator draws from RNG streams
keyed by (seed, purpose, index), never from shared mutable state — so
the grid can be computed in any order, in any process, with bit-identical
results. This module exploits that:

* a :class:`WorkItem` names one cell; drivers declare the cells they
  need via a module-level ``work(config)`` hook (see ``fig*.py``);
* :func:`execute` fans the deduplicated items out over a
  ``concurrent.futures.ProcessPoolExecutor``. Workers share one
  :class:`~repro.experiments.cache.ResultCache` with the parent: each
  worker persists its results under content-addressed keys and the
  parent rehydrates them from disk, so no large trace ever crosses the
  pipe;
* ``--jobs N`` on the CLI (or ``REPRO_JOBS``) picks the width; ``N=1``
  is a plain serial loop with no pool and no extra processes.

Failures are contained: a work item that dies in a worker is recomputed
serially in the parent, so parallelism is purely an optimization.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.validation import resolve_jobs  # noqa: F401 — historical
from repro.experiments.cache import ResultCache   # home of this module's API
from repro.experiments.runner import ExperimentRunner
from repro.experiments.setup import ExperimentConfig


@dataclass(frozen=True, order=True)
class WorkItem:
    """One independent ground-truth simulation of the experiment grid."""

    #: ``"fixed"`` (value = frequency in GHz) or ``"managed"`` (value =
    #: tolerable-slowdown threshold).
    kind: str
    benchmark: str
    value: float

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "managed"):
            raise ConfigError(f"unknown work kind {self.kind!r}")
        object.__setattr__(self, "value", round(self.value, 6))


def fixed_items(
    benchmarks: Iterable[str], freqs_ghz: Iterable[float]
) -> Tuple[WorkItem, ...]:
    """Fixed-run items for the (benchmark × frequency) grid."""
    return tuple(
        WorkItem("fixed", bench, freq)
        for bench in benchmarks
        for freq in freqs_ghz
    )


def managed_items(
    benchmarks: Iterable[str], thresholds: Iterable[float]
) -> Tuple[WorkItem, ...]:
    """Managed-run items for the (benchmark × threshold) grid."""
    return tuple(
        WorkItem("managed", bench, threshold)
        for bench in benchmarks
        for threshold in thresholds
    )


@dataclass
class ExecutionReport:
    """What :func:`execute` did with the requested grid."""

    items: int = 0
    jobs: int = 1
    #: Items whose worker raised; they were recomputed in the parent.
    recovered: List[Tuple[WorkItem, str]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.recovered is None:
            self.recovered = []


# One runner per worker process, built by the pool initializer so every
# batch handled by that worker shares bundles and the disk cache.
_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _init_worker(config: ExperimentConfig, cache_root: str) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = ExperimentRunner(config, cache=ResultCache(cache_root))


def _group_fixed(
    items: Sequence[WorkItem],
) -> Tuple[Dict[str, List[WorkItem]], List[WorkItem]]:
    """(fixed items per benchmark, everything else) — batchable split."""
    fixed: Dict[str, List[WorkItem]] = {}
    rest: List[WorkItem] = []
    for item in items:
        if item.kind == "fixed":
            fixed.setdefault(item.benchmark, []).append(item)
        else:
            rest.append(item)
    return fixed, rest


def _run_batch(
    batch: Sequence[WorkItem],
    use_batch: bool = False,
) -> List[Tuple[WorkItem, Optional[str]]]:
    """Compute one batch in a worker; results travel via the shared cache."""
    assert _WORKER_RUNNER is not None, "worker used before initialization"
    results: List[Tuple[WorkItem, Optional[str]]] = []
    if use_batch:
        fixed, batch = _group_fixed(batch)
        for bench in sorted(fixed):
            items = fixed[bench]
            try:
                _WORKER_RUNNER.fixed_runs_batch(
                    bench, [item.value for item in items]
                )
                results.extend((item, None) for item in items)
            except Exception:  # contained: retry the lanes one by one
                batch = items + list(batch)
    for item in batch:
        try:
            _apply(_WORKER_RUNNER, item)
            results.append((item, None))
        except Exception as exc:  # contained: the parent recomputes
            results.append((item, f"{type(exc).__name__}: {exc}"))
    return results


def _partition(grid: Sequence[WorkItem], jobs: int) -> List[List[WorkItem]]:
    """Split the grid into batches that preserve per-benchmark reuse.

    All of a benchmark's runs share its bundle — the built program and,
    critically, the GC model's per-cycle cache, which costs as much to
    rebuild as a simulation. Scattering a benchmark's frequencies across
    workers rebuilds that state once per worker and can make the pool
    *slower* than the serial loop, so the unit of distribution is a
    per-benchmark batch; only when there are fewer benchmarks than
    workers are the largest batches split (halving latency at the price
    of one duplicated bundle build).
    """
    groups: dict = {}
    for item in grid:
        groups.setdefault(item.benchmark, []).append(item)
    batches = list(groups.values())
    while len(batches) < min(jobs, len(grid)):
        batches.sort(key=lambda b: (-len(b), b[0]))
        largest = batches[0]
        if len(largest) <= 1:
            break
        mid = (len(largest) + 1) // 2
        batches[:1] = [largest[:mid], largest[mid:]]
    return sorted(batches)  # deterministic submission order


def _apply(runner: ExperimentRunner, item: WorkItem):
    if item.kind == "fixed":
        return runner.fixed_run(item.benchmark, item.value)
    return runner.managed_run(item.benchmark, item.value)


def execute(
    runner: ExperimentRunner,
    items: Sequence[WorkItem],
    jobs: Optional[int] = None,
    batch: bool = False,
) -> ExecutionReport:
    """Materialize every item in ``runner``, fanning out over ``jobs`` processes.

    After this returns, each item is available in ``runner``'s in-memory
    maps (and on disk when caching): drivers hit warm lookups only. With
    ``jobs=1`` — or a single item — everything runs serially in-process.

    With ``batch=True``, each benchmark's fixed-frequency fan-out goes
    through :meth:`~repro.experiments.runner.ExperimentRunner.fixed_runs_batch`
    — one batched simulation per benchmark instead of one run per
    frequency; results are byte-identical (managed items are governor
    runs with per-quantum feedback and stay per-item). In workers a
    failed batched call falls back to per-item runs before the parent's
    serial recovery kicks in.

    A runner without a persistent cache gets an ephemeral one for the
    life of the process (under the system temp dir), since workers and
    parent need a common store to exchange results through.
    """
    grid = sorted(set(items))
    jobs = resolve_jobs(jobs)
    report = ExecutionReport(items=len(grid), jobs=jobs)
    if jobs == 1 or len(grid) <= 1:
        report.jobs = 1
        if batch:
            fixed, rest = _group_fixed(grid)
            for bench in sorted(fixed):
                runner.fixed_runs_batch(
                    bench, [item.value for item in fixed[bench]]
                )
            grid_serial = rest
        else:
            grid_serial = grid
        for item in grid_serial:
            _apply(runner, item)
        return report

    if runner.cache is None:
        runner.cache = ResultCache(
            tempfile.mkdtemp(prefix="repro-ephemeral-cache-")
        )
    batches = _partition(grid, jobs)
    failures = {}
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(batches)),
        initializer=_init_worker,
        initargs=(runner.config, str(runner.cache.root)),
    ) as pool:
        run_one = partial(_run_batch, use_batch=batch)
        for results in pool.map(run_one, batches, chunksize=1):
            for item, error in results:
                if error is not None:
                    failures[item] = error
    for item in grid:
        error = failures.get(item)
        if error is not None:
            report.recovered.append((item, error))
        _apply(runner, item)  # cache hit for worker-computed items
    return report
