"""Figure 7: dynamic energy manager vs the static-optimal oracle.

Static-optimal picks, in hindsight, the fixed frequency minimizing energy
within the slowdown bound. The paper finds the dynamic manager on par with
static-optimal for compute-intensive benchmarks and slightly better for
memory-intensive ones (+2.1 points on average at the 10% threshold),
because it adapts to phase behaviour.
"""

from __future__ import annotations

from typing import List

from repro.energy.static_oracle import predicted_static_optimal, static_optimal
from repro.experiments.report import ExperimentResult, mean, pct
from repro.experiments.runner import ExperimentRunner


def work(config):
    """Ground-truth grid Figure 7 needs (parallel prefetch hook)."""
    from repro.experiments.parallel import fixed_items, managed_items

    freqs = sorted({4.0, *config.static_freqs_ghz})
    return fixed_items(config.benchmarks, freqs) + managed_items(
        config.benchmarks, config.thresholds
    )


def run(runner: ExperimentRunner) -> List[ExperimentResult]:
    """Regenerate Figure 7 (one table per threshold)."""
    config = runner.config
    results: List[ExperimentResult] = []
    for threshold in config.thresholds:
        result = ExperimentResult(
            experiment_id=f"Fig 7 ({threshold:.0%})",
            title=(
                "Dynamic manager vs static-optimal energy savings "
                f"(slowdown bound {threshold:.0%})"
            ),
            headers=[
                "benchmark",
                "type",
                "dynamic saving",
                "static-optimal saving",
                "static freq (GHz)",
                "predicted static (GHz)",
                "delta (dyn-static)",
            ],
            notes=(
                "static-optimal sweeps fixed frequencies "
                f"{config.static_freqs_ghz} GHz; 'predicted static' is the "
                "simulate-once answer (DEP+BURST sweep over the 4 GHz "
                "trace, no per-frequency re-runs); paper reports dynamic "
                "slightly above static-optimal for memory-intensive "
                "benchmarks (+2.1 points at 10%)"
            ),
        )
        deltas_memory: List[float] = []
        for benchmark in config.benchmarks:
            baseline = runner.fixed_run(benchmark, 4.0)
            sweep = {
                freq: (run_.total_ns, run_.energy_j)
                for freq, run_ in (
                    (f, runner.fixed_run(benchmark, f))
                    for f in config.static_freqs_ghz
                )
            }
            spec = runner.bundle(benchmark).spec
            oracle = static_optimal(
                sweep, threshold, max_freq_ghz=spec.max_freq_ghz
            )
            # The simulate-once answer: one DEP+BURST sweep over the
            # retained 4 GHz trace instead of one run per set point.
            predicted = predicted_static_optimal(
                runner.base_trace(benchmark, 4.0),
                runner.power_model(benchmark),
                config.static_freqs_ghz,
                threshold,
                max_freq_ghz=spec.max_freq_ghz,
            )
            managed = runner.managed_run(benchmark, threshold)
            dynamic_saving = 1.0 - managed.energy_j / baseline.energy_j
            delta = dynamic_saving - oracle.energy_saving
            bundle = runner.bundle(benchmark)
            if bundle.is_memory_intensive:
                deltas_memory.append(delta)
            result.rows.append(
                (
                    benchmark,
                    bundle.type_label,
                    pct(dynamic_saving),
                    pct(oracle.energy_saving),
                    f"{oracle.freq_ghz:.2f}",
                    f"{predicted.freq_ghz:.2f}",
                    pct(delta),
                )
            )
        if deltas_memory:
            result.rows.append(
                ("MEAN delta (memory)", "M", "", "", "", "", pct(mean(deltas_memory)))
            )
        results.append(result)
    return results
