"""Table I: benchmark characteristics at 1 GHz (simulated vs paper)."""

from __future__ import annotations

from repro.common.units import ns_to_ms
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.dacapo import TABLE1_EXPECTED


def work(config):
    """Ground-truth grid Table I needs (parallel prefetch hook)."""
    from repro.experiments.parallel import fixed_items

    return fixed_items(config.benchmarks, (1.0,))


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Regenerate Table I from 1 GHz ground-truth runs."""
    config = runner.config
    result = ExperimentResult(
        experiment_id="Table I",
        title="Benchmarks: type, heap, execution and GC time at 1 GHz",
        headers=[
            "benchmark",
            "type",
            "heap (MB)",
            "exec (ms)",
            "paper exec",
            "GC (ms)",
            "paper GC",
            "GCs",
        ],
        notes=(
            f"simulated at REPRO_SCALE={config.scale}; paper columns are "
            "Table I values (scale them by REPRO_SCALE for comparison)"
        ),
    )
    for name in config.benchmarks:
        row = TABLE1_EXPECTED[name]
        fixed = runner.fixed_run(name, 1.0)
        result.rows.append(
            (
                name,
                row.type_label,
                row.heap_mb,
                f"{ns_to_ms(fixed.total_ns):.0f}",
                f"{row.exec_time_ms * config.scale:.0f}",
                f"{ns_to_ms(fixed.gc_time_ns):.0f}",
                f"{row.gc_time_ms * config.scale:.0f}",
                fixed.gc_cycles,
            )
        )
    return result
