"""Figure 3: per-benchmark prediction errors, six models, both directions.

Figure 3(a): base 1 GHz, targets 2/3/4 GHz. Figure 3(b): base 4 GHz,
targets 3/2/1 GHz. Models: M+CRIT, COOP, DEP, each with and without
BURST. The paper's headline means: M+CRIT 27%/70%, COOP 22%/63%,
DEP 19%/57%, DEP+BURST 6%/8% (1→4 / 4→1 directions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.evaluate import prediction_error
from repro.core.predictors import make_predictor, predictor_names
from repro.experiments.report import ExperimentResult, mean_abs, pct, pct_abs
from repro.experiments.runner import ExperimentRunner

#: Paper's reported average absolute errors at the farthest target.
PAPER_MEANS = {
    "up": {"M+CRIT": 0.27, "COOP": 0.22, "DEP": 0.19, "DEP+BURST": 0.06},
    "down": {"M+CRIT": 0.70, "COOP": 0.63, "DEP": 0.57, "DEP+BURST": 0.08},
}


@dataclass
class Fig3Data:
    """Raw signed errors: direction -> model -> benchmark -> target -> error."""

    up: Dict[str, Dict[str, Dict[float, float]]]
    down: Dict[str, Dict[str, Dict[float, float]]]

    def mean_abs_at(self, direction: str, model: str, target: float) -> float:
        """Average absolute error across benchmarks at one target."""
        per_bench = getattr(self, direction)[model]
        return mean_abs([per_bench[b][target] for b in per_bench])


def work(config):
    """Ground-truth grid Figure 3 needs (parallel prefetch hook)."""
    from repro.experiments.parallel import fixed_items

    freqs = sorted(
        {1.0, 4.0, *config.targets_up_ghz, *config.targets_down_ghz}
    )
    return fixed_items(config.benchmarks, freqs)


def collect(runner: ExperimentRunner) -> Fig3Data:
    """Compute the full error grid (cached ground truths via the runner)."""
    config = runner.config
    models = predictor_names()
    data = Fig3Data(up={m: {} for m in models}, down={m: {} for m in models})
    directions: Tuple[Tuple[str, float, Tuple[float, ...]], ...] = (
        ("up", 1.0, config.targets_up_ghz),
        ("down", 4.0, config.targets_down_ghz),
    )
    for direction, base_freq, targets in directions:
        for benchmark in config.benchmarks:
            actuals = {
                t: runner.fixed_run(benchmark, t).total_ns for t in targets
            }
            if runner.sweep:
                # One epoch decomposition per (benchmark, base), shared
                # by all models and targets of this figure.
                sweep = runner.trace_sweep(benchmark, base_freq)
                for model in models:
                    estimates = sweep.predict(make_predictor(model), targets)
                    getattr(data, direction)[model][benchmark] = {
                        t: prediction_error(est, actuals[t])
                        for t, est in zip(targets, estimates)
                    }
                continue
            base = runner.base_trace(benchmark, base_freq)
            for model in models:
                predictor = make_predictor(model)
                errors = {
                    t: prediction_error(
                        predictor.predict_total_ns(base, t), actuals[t]
                    )
                    for t in targets
                }
                getattr(data, direction)[model][benchmark] = errors
    return data


def run(runner: ExperimentRunner) -> List[ExperimentResult]:
    """Regenerate Figure 3(a) and 3(b) plus the headline-mean comparison."""
    config = runner.config
    data = collect(runner)
    models = predictor_names()
    results: List[ExperimentResult] = []
    for direction, base_freq, targets, fig_id in (
        ("up", 1.0, config.targets_up_ghz, "Fig 3(a)"),
        ("down", 4.0, config.targets_down_ghz, "Fig 3(b)"),
    ):
        result = ExperimentResult(
            experiment_id=fig_id,
            title=f"Signed prediction error, base {base_freq:.0f} GHz",
            headers=["benchmark", "target"] + models,
        )
        for benchmark in config.benchmarks:
            for target in targets:
                result.rows.append(
                    [benchmark, f"{target:.0f} GHz"]
                    + [
                        pct(getattr(data, direction)[m][benchmark][target])
                        for m in models
                    ]
                )
        far_target = targets[-1]
        result.rows.append(
            ["MEAN |err|", f"{far_target:.0f} GHz"]
            + [pct_abs(data.mean_abs_at(direction, m, far_target)) for m in models]
        )
        paper = PAPER_MEANS[direction]
        result.rows.append(
            ["paper mean", f"{far_target:.0f} GHz"]
            + [
                pct_abs(paper[m]) if m in paper else "-"
                for m in models
            ]
        )
        results.append(result)
    return results
