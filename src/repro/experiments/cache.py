"""Persistent, content-addressed result cache for ground-truth simulations.

Ground-truth runs dominate the cost of every table and figure: each
benchmark is simulated at every frequency step and again per slowdown
threshold. :class:`~repro.experiments.runner.ExperimentRunner` memoizes
only in-process, so every CLI invocation used to re-simulate from
scratch. This module gives those results a durable home:

* **Content-addressed keys.** An entry's key is a SHA-256 over the
  canonical JSON of everything that determines the result: the benchmark's
  workload spec, :class:`~repro.arch.specs.MachineSpec`,
  :class:`~repro.jvm.runtime.JvmConfig`, the frequency or threshold, the
  scheduling quantum, the trace :data:`~repro.sim.serialize.FORMAT_VERSION`
  and this module's :data:`CACHE_SCHEMA_VERSION`. Same inputs → same key;
  any config or schema change → different key, so stale entries are never
  returned (they are simply orphaned until ``clear``).
* **Durable values.** Fixed- and managed-run summaries are stored as small
  JSON documents; base-frequency traces ride in a gzip sidecar written by
  :mod:`repro.sim.serialize` (the archival trace format).
* **Crash/corruption safety.** Writes go to a temporary file in the cache
  directory and are published with an atomic ``os.replace``; reads treat
  *any* malformed entry as a miss (recompute, never crash) and remove the
  offender best-effort.

The default location is ``~/.cache/repro``, overridable with the
``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

from repro.common.store import (  # noqa: F401 — canonical/stable_hash are
    atomic_write_text,            # this module's historical public API
    canonical,
    stable_hash,
    unlink_quiet,
)
from repro.sim.serialize import FORMAT_VERSION, load_trace, save_trace

if TYPE_CHECKING:  # runner imports this module; keep the cycle import-time free
    from repro.experiments.runner import FixedRun, ManagedRun

#: Bump when the simulator/cache semantics change in a way the key's
#: config fields cannot capture (e.g. a timing-model fix): every existing
#: entry becomes unreachable and is recomputed on demand.
CACHE_SCHEMA_VERSION = 1

_PathLike = Union[str, Path]


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


# ----------------------------------------------------------------------
# Content keys (canonical hashing now lives in repro.common.store)
# ----------------------------------------------------------------------


def fixed_key(fingerprint: Dict[str, Any], freq_ghz: float, quantum_ns: float) -> str:
    """Content key of one fixed-frequency ground-truth run."""
    return stable_hash(
        {
            "kind": "fixed",
            "schema": CACHE_SCHEMA_VERSION,
            "trace_format": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "freq_ghz": round(freq_ghz, 6),
            "quantum_ns": quantum_ns,
        }
    )


def prediction_fingerprint(sweep: bool) -> Dict[str, Any]:
    """Cache-key identity of the prediction engine driving a managed run.

    Sweep-kernel and scalar predictions are bit-identical by contract,
    but the cache must not *assume* the contract holds: a managed result
    computed under one engine (or one kernel revision) must never alias
    a lookup under another, or an engine bug could hide behind a stale
    hit. Hence both the engine name and the kernel version participate
    in :func:`managed_key`.
    """
    from repro.core.sweep import KERNEL_VERSION

    return {
        "engine": "sweep" if sweep else "scalar",
        "kernel_version": KERNEL_VERSION if sweep else 0,
    }


def managed_key(
    fingerprint: Dict[str, Any],
    manager_config: Any,
    quantum_ns: float,
    prediction: Optional[Dict[str, Any]] = None,
) -> str:
    """Content key of one energy-managed run.

    Keyed by the full manager config plus the prediction-engine
    fingerprint (see :func:`prediction_fingerprint`); ``None`` marks a
    caller that predates the engine split and hashes distinctly from
    both engines.
    """
    return stable_hash(
        {
            "kind": "managed",
            "schema": CACHE_SCHEMA_VERSION,
            "trace_format": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "manager": manager_config,
            "quantum_ns": quantum_ns,
            "prediction": prediction,
        }
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


@dataclass
class CacheStats:
    """Per-process counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found on disk but rejected (truncated, bit-flipped, wrong
    #: schema...); each rejection is also a miss.
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ResultCache:
    """Content-addressed on-disk store of experiment ground truths.

    One directory per schema version; inside it, one JSON summary per
    entry (name = ``<kind>-<benchmark>-<key prefix>``) plus an optional
    gzip trace sidecar for base-frequency runs. Concurrent writers are
    safe: both compute identical bytes for a key and publish atomically,
    so the last rename wins with an identical result.
    """

    def __init__(self, root: Optional[_PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # -- layout --------------------------------------------------------

    @property
    def _store(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def _summary_path(self, kind: str, benchmark: str, key: str) -> Path:
        return self._store / f"{kind}-{benchmark}-{key[:20]}.json"

    def _trace_path(self, summary: Path) -> Path:
        return summary.with_suffix(".trace.gz")

    # -- atomic plumbing ----------------------------------------------

    def _publish_text(self, path: Path, text: str) -> None:
        atomic_write_text(path, text)

    def _publish_trace(self, path: Path, trace) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".gz"
        )
        os.close(fd)
        try:
            save_trace(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            unlink_quiet(Path(tmp))
            raise

    def _read_entry(self, path: Path, key: str) -> Optional[Dict]:
        """Load and sanity-check a summary; any defect counts as corruption."""
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except Exception:
            self._reject(path)
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            self._reject(path)
            return None
        return entry

    def _reject(self, summary: Path) -> None:
        """Drop a corrupt entry (and its sidecar) so it is rebuilt cleanly."""
        self.stats.errors += 1
        unlink_quiet(summary)
        unlink_quiet(self._trace_path(summary))

    # -- fixed runs ----------------------------------------------------

    def load_fixed(self, key: str, benchmark: str) -> Optional["FixedRun"]:
        """The cached :class:`FixedRun` under ``key``, or ``None``."""
        from repro.experiments.runner import FixedRun

        path = self._summary_path("fixed", benchmark, key)
        entry = self._read_entry(path, key)
        if entry is None:
            self.stats.misses += 1
            return None
        try:
            trace = None
            if entry["has_trace"]:
                trace = load_trace(self._trace_path(path))
            run = FixedRun(
                benchmark=str(entry["benchmark"]),
                freq_ghz=float(entry["freq_ghz"]),
                total_ns=entry["total_ns"],
                gc_time_ns=entry["gc_time_ns"],
                gc_cycles=int(entry["gc_cycles"]),
                energy_j=entry["energy_j"],
                trace=trace,
            )
        except Exception:
            self._reject(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return run

    def store_fixed(self, key: str, run: "FixedRun") -> None:
        """Persist a fixed run (trace sidecar first, then the summary)."""
        path = self._summary_path("fixed", run.benchmark, key)
        if run.trace is not None:
            self._publish_trace(self._trace_path(path), run.trace)
        entry = {
            "key": key,
            "benchmark": run.benchmark,
            "freq_ghz": run.freq_ghz,
            "total_ns": run.total_ns,
            "gc_time_ns": run.gc_time_ns,
            "gc_cycles": run.gc_cycles,
            "energy_j": run.energy_j,
            "has_trace": run.trace is not None,
        }
        self._publish_text(path, json.dumps(entry, separators=(",", ":")))
        self.stats.stores += 1

    # -- managed runs --------------------------------------------------

    def load_managed(self, key: str, benchmark: str) -> Optional["ManagedRun"]:
        """The cached :class:`ManagedRun` under ``key``, or ``None``."""
        from repro.energy.manager import ManagerDecision
        from repro.experiments.runner import ManagedRun

        path = self._summary_path("managed", benchmark, key)
        entry = self._read_entry(path, key)
        if entry is None:
            self.stats.misses += 1
            return None
        try:
            run = ManagedRun(
                benchmark=str(entry["benchmark"]),
                threshold=float(entry["threshold"]),
                total_ns=entry["total_ns"],
                energy_j=entry["energy_j"],
                decisions=[
                    ManagerDecision(
                        interval_index=int(index),
                        base_freq_ghz=base,
                        chosen_freq_ghz=chosen,
                        predicted_slowdown=slowdown,
                    )
                    for index, base, chosen, slowdown in entry["decisions"]
                ],
            )
        except Exception:
            self._reject(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return run

    def store_managed(self, key: str, run: "ManagedRun") -> None:
        """Persist a managed run, decisions inline."""
        path = self._summary_path("managed", run.benchmark, key)
        entry = {
            "key": key,
            "benchmark": run.benchmark,
            "threshold": run.threshold,
            "total_ns": run.total_ns,
            "energy_j": run.energy_j,
            "decisions": [
                [
                    d.interval_index,
                    d.base_freq_ghz,
                    d.chosen_freq_ghz,
                    d.predicted_slowdown,
                ]
                for d in run.decisions
            ],
        }
        self._publish_text(path, json.dumps(entry, separators=(",", ":")))
        self.stats.stores += 1

    # -- maintenance ---------------------------------------------------

    def disk_stats(self) -> Dict[str, int]:
        """Entry and byte counts on disk, across all schema versions."""
        entries = traces = size = stale = 0
        if self.root.is_dir():
            for path in self.root.rglob("*"):
                if not path.is_file():
                    continue
                size += path.stat().st_size
                if path.name.startswith(".tmp-"):
                    continue
                current = path.parent == self._store
                if path.suffix == ".json":
                    entries += current
                    stale += not current
                elif path.name.endswith(".trace.gz"):
                    traces += current
        return {
            "entries": entries,
            "traces": traces,
            "stale_entries": stale,
            "size_bytes": size,
        }

    def clear(self) -> int:
        """Remove every version directory under the root; return files removed."""
        removed = 0
        if self.root.is_dir():
            for child in sorted(self.root.iterdir()):
                if child.is_dir() and child.name.startswith("v"):
                    removed += sum(1 for p in child.rglob("*") if p.is_file())
                    shutil.rmtree(child, ignore_errors=True)
        return removed


def describe(cache: ResultCache) -> str:
    """Human-readable one-stop summary (CLI ``cache stats``)."""
    disk = cache.disk_stats()
    lines = [
        f"cache root:    {cache.root}",
        f"schema:        v{CACHE_SCHEMA_VERSION} (trace format {FORMAT_VERSION})",
        f"entries:       {disk['entries']} ({disk['traces']} traces, "
        f"{disk['stale_entries']} stale from other versions)",
        f"size on disk:  {disk['size_bytes'] / 1e6:.1f} MB",
    ]
    session = cache.stats
    if session.hits or session.misses or session.stores:
        lines.append(
            f"this session:  {session.hits} hits, {session.misses} misses, "
            f"{session.stores} stores, {session.errors} corrupt"
        )
    return "\n".join(lines)
