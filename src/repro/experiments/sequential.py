"""Background validation: sequential predictors on microbenchmarks.

Section II.A summarizes a progression of sequential DVFS predictors —
stall time, leading loads, CRIT — each fixing its predecessor's blind
spot. This experiment validates that our substrate reproduces that
progression on the classic microbenchmark shapes, plus the store-heavy
case that motivates this paper's BURST term.

Expected structure (all from the literature the paper cites):

* ``compute``        — everyone exact;
* ``streaming``      — leading loads ≈ CRIT (uniform latency);
* ``pointer_chase``  — leading loads badly under-counts (deep chains);
* ``bank_conflicts`` — leading loads drifts (variable latency), CRIT holds;
* ``store_heavy``    — all load-based models fail; CRIT+BURST fixes it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.evaluate import prediction_error
from repro.core.predictors import SequentialPredictor
from repro.experiments.report import ExperimentResult, pct
from repro.sim.run import simulate
from repro.workloads.micro import get_micro, micro_names

_BASE_GHZ = 1.0
_TARGET_GHZ = 4.0
_MODELS = ("stall", "leading-loads", "crit", "crit+burst")


def collect(units: int = 40) -> Dict[str, Dict[str, float]]:
    """Signed 1→4 GHz error per (microbenchmark, sequential model)."""
    errors: Dict[str, Dict[str, float]] = {}
    for name in micro_names():
        program = get_micro(name, units=units)
        base = simulate(program, _BASE_GHZ)
        actual = simulate(program, _TARGET_GHZ)
        errors[name] = {}
        for model in _MODELS:
            burst = model.endswith("+burst")
            predictor = SequentialPredictor(
                model.replace("+burst", ""), burst=burst
            )
            predicted = predictor.predict_total_ns(base.trace, _TARGET_GHZ)
            errors[name][model] = prediction_error(predicted, actual.total_ns)
    return errors


def work(config):
    """Microbenchmarks run in-process and uncached: nothing to prefetch."""
    return ()


def run(runner=None, units: int = 40) -> ExperimentResult:
    """Render the sequential-model validation table.

    ``runner`` is accepted for harness uniformity but unused — the
    microbenchmarks are independent of the DaCapo models.
    """
    errors = collect(units=units)
    result = ExperimentResult(
        experiment_id="Sec II.A",
        title="Sequential predictors on microbenchmarks (error, 1 -> 4 GHz)",
        headers=["microbenchmark"] + list(_MODELS),
        notes=(
            "background validation of the substrate: the literature's "
            "stall < leading-loads < CRIT accuracy progression, plus the "
            "store-burst failure mode BURST exists for"
        ),
    )
    for name, per_model in errors.items():
        result.rows.append(
            [name] + [pct(per_model[model]) for model in _MODELS]
        )
    return result
