"""Serve replay parity: the online service vs. the in-process governor.

The ``govern`` endpoint of :mod:`repro.serve` claims byte-identical
decision parity with :class:`~repro.energy.manager.EnergyManager`: a
client that streams a managed run's interval records (and their epoch
slices) through a server-side session must read back exactly the
decision log the in-process manager produced. This driver proves it
end to end over the wire, twice per run:

1. run a benchmark under the in-process energy manager,
2. stand up a real **single server** (unix socket, batching enabled)
   and a real **two-worker pool** behind the routing frontend
   (:mod:`repro.serve.pool` / :mod:`repro.serve.frontend`, shared
   prediction cache on),
3. replay the recorded trace through a fresh ``govern`` session on
   each topology — the pool session is pinned by a per-run
   ``session_key``, so the run exercises consistent-hash routing,
4. compare all three decision logs *as encoded wire bytes* — the same
   JSON encoding the protocol uses, so "equal" means equal at the byte
   level, not approximately.

One memory-intensive and one compute-intensive benchmark, at both
slowdown thresholds. The report also shows which pool worker served
each session and the final per-worker session distribution (read from
each worker directly, so the numbers are exact, not fleet-staleness
bounded). A parity failure raises — this experiment is a correctness
gate, not a measurement.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict

from repro.common.errors import ReproError
from repro.energy.manager import EnergyManager, ManagerConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.serve import protocol
from repro.serve.background import BackgroundServer
from repro.serve.client import ServeClient, replay_decisions
from repro.serve.frontend import BackgroundFrontend, Frontend
from repro.serve.pool import WorkerPool
from repro.serve.server import ServeConfig
from repro.serve.sessions import decision_to_wire
from repro.serve.sharding import shard_for_key
from repro.sim.run import simulate_managed

#: One benchmark from each of the paper's groups.
BENCHMARKS = ("lusearch", "avrora")

#: Pool size the parity gate runs at (the acceptance floor is >= 2).
POOL_WORKERS = 2


def work(config):
    """No prefetchable ground truths: parity needs the managed *traces*,
    which the shared runner summarizes away, so this driver simulates
    its benchmarks itself."""
    return []


def decision_bytes(decisions) -> bytes:
    """Encode a decision log exactly as the wire protocol would."""
    return protocol.encode_frame(
        {"decisions": [decision_to_wire(d) for d in decisions]}
    )


def _worker_sessions_opened(pool: WorkerPool) -> Dict[int, int]:
    """Exact sessions-opened per worker, asked of each worker directly."""
    opened: Dict[int, int] = {}
    for worker_id in range(pool.n_workers):
        with ServeClient.connect(**pool.worker_endpoint(worker_id)) as probe:
            snapshot = probe.stats()
            opened[worker_id] = int(snapshot["sessions"]["opened"])
    return opened


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Replay managed runs through live topologies; assert byte parity."""
    config = runner.config
    result = ExperimentResult(
        experiment_id="Serve replay",
        title="Online service decision parity vs. in-process governor",
        headers=["benchmark", "threshold", "decisions", "wire bytes",
                 "single", f"pool x{POOL_WORKERS}", "worker"],
        notes="decision logs compared as encoded protocol frames; "
        "any mismatch raises",
    )
    benchmarks = [b for b in BENCHMARKS if b in config.benchmarks] or list(
        config.benchmarks[:2]
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        socket_path = os.path.join(tmp, "serve.sock")
        pool_path = os.path.join(tmp, "pool.sock")
        pool = WorkerPool(
            ServeConfig(socket_path=pool_path, predict_cache_mem=1024),
            POOL_WORKERS,
            shared_cache=True,
        )
        with BackgroundServer(ServeConfig(socket_path=socket_path)):
            pool.start()
            frontend = BackgroundFrontend(
                Frontend(pool.worker_paths(), socket_path=pool_path)
            )
            frontend.start()
            try:
                with ServeClient.connect(socket_path=socket_path) as client, \
                        ServeClient.connect(socket_path=pool_path) as pooled:
                    for benchmark in benchmarks:
                        bundle = runner.bundle(benchmark)
                        for threshold in config.thresholds:
                            manager_config = ManagerConfig(
                                tolerable_slowdown=threshold
                            )
                            manager = EnergyManager(
                                bundle.spec, manager_config
                            )
                            sim = simulate_managed(
                                bundle.program,
                                manager,
                                spec=bundle.spec,
                                jvm_config=bundle.jvm_config,
                                gc_model=bundle.gc_model,
                                quantum_ns=config.quantum_ns,
                            )
                            runner.simulations += 1
                            local_bytes = decision_bytes(manager.decisions)
                            session_key = f"{benchmark}@{threshold:.2f}"
                            remote = replay_decisions(
                                client, sim.trace, manager_config
                            )
                            pool_remote = replay_decisions(
                                pooled, sim.trace, manager_config,
                                session_key=session_key,
                            )
                            for label, log in (
                                ("single-server", remote),
                                (f"{POOL_WORKERS}-worker pool", pool_remote),
                            ):
                                if decision_bytes(log) != local_bytes:
                                    raise ReproError(
                                        f"serve replay parity broken for "
                                        f"{benchmark} at threshold "
                                        f"{threshold:.0%} on {label}: server "
                                        f"log differs from in-process log"
                                    )
                            worker_id = shard_for_key(
                                session_key, POOL_WORKERS
                            )
                            result.rows.append(
                                (
                                    benchmark,
                                    f"{threshold:.0%}",
                                    str(len(manager.decisions)),
                                    str(len(local_bytes)),
                                    "byte-identical",
                                    "byte-identical",
                                    f"w{worker_id}",
                                )
                            )
                    opened = _worker_sessions_opened(pool)
            finally:
                frontend.stop()
                pool.stop()
    distribution = ", ".join(
        f"w{worker_id}={count}" for worker_id, count in sorted(opened.items())
    )
    result.notes += f"; pool sessions opened by worker: {distribution}"
    return result
