"""Serve replay parity: the online service vs. the in-process governor.

The ``govern`` endpoint of :mod:`repro.serve` claims byte-identical
decision parity with :class:`~repro.energy.manager.EnergyManager`: a
client that streams a managed run's interval records (and their epoch
slices) through a server-side session must read back exactly the
decision log the in-process manager produced. This driver proves it
end to end over the wire:

1. run a benchmark under the in-process energy manager,
2. stand up a real server (unix socket, batching enabled),
3. replay the recorded trace through a fresh ``govern`` session,
4. compare the two decision logs *as encoded wire bytes* — the same
   JSON encoding the protocol uses, so "equal" means equal at the byte
   level, not approximately.

One memory-intensive and one compute-intensive benchmark, at both
slowdown thresholds. A parity failure raises — this experiment is a
correctness gate, not a measurement.
"""

from __future__ import annotations

import os
import tempfile
from typing import List

from repro.common.errors import ReproError
from repro.energy.manager import EnergyManager, ManagerConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.serve import protocol
from repro.serve.background import BackgroundServer
from repro.serve.client import ServeClient, replay_decisions
from repro.serve.server import ServeConfig
from repro.serve.sessions import decision_to_wire
from repro.sim.run import simulate_managed

#: One benchmark from each of the paper's groups.
BENCHMARKS = ("lusearch", "avrora")


def work(config):
    """No prefetchable ground truths: parity needs the managed *traces*,
    which the shared runner summarizes away, so this driver simulates
    its benchmarks itself."""
    return []


def decision_bytes(decisions) -> bytes:
    """Encode a decision log exactly as the wire protocol would."""
    return protocol.encode_frame(
        {"decisions": [decision_to_wire(d) for d in decisions]}
    )


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Replay managed runs through a live server; assert byte parity."""
    config = runner.config
    result = ExperimentResult(
        experiment_id="Serve replay",
        title="Online service decision parity vs. in-process governor",
        headers=["benchmark", "threshold", "decisions", "wire bytes", "parity"],
        notes="decision logs compared as encoded protocol frames; "
        "any mismatch raises",
    )
    benchmarks = [b for b in BENCHMARKS if b in config.benchmarks] or list(
        config.benchmarks[:2]
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        socket_path = os.path.join(tmp, "serve.sock")
        with BackgroundServer(ServeConfig(socket_path=socket_path)) as _server:
            with ServeClient.connect(socket_path=socket_path) as client:
                for benchmark in benchmarks:
                    bundle = runner.bundle(benchmark)
                    for threshold in config.thresholds:
                        manager_config = ManagerConfig(
                            tolerable_slowdown=threshold
                        )
                        manager = EnergyManager(bundle.spec, manager_config)
                        sim = simulate_managed(
                            bundle.program,
                            manager,
                            spec=bundle.spec,
                            jvm_config=bundle.jvm_config,
                            gc_model=bundle.gc_model,
                            quantum_ns=config.quantum_ns,
                        )
                        runner.simulations += 1
                        remote = replay_decisions(
                            client, sim.trace, manager_config
                        )
                        local_bytes = decision_bytes(manager.decisions)
                        remote_bytes = decision_bytes(remote)
                        if remote_bytes != local_bytes:
                            raise ReproError(
                                f"serve replay parity broken for {benchmark} "
                                f"at threshold {threshold:.0%}: server log "
                                f"differs from in-process log"
                            )
                        result.rows.append(
                            (
                                benchmark,
                                f"{threshold:.0%}",
                                str(len(manager.decisions)),
                                str(len(local_bytes)),
                                "byte-identical",
                            )
                        )
    return result
