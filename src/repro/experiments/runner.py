"""Cached ground-truth simulation runner shared by all experiments.

Every experiment needs some mix of: fixed-frequency ground-truth runs
(execution time, GC time, energy), the base-frequency *traces* the
predictors consume, and managed (governor-controlled) runs. Simulations
dominate the suite's cost, so the runner memoizes them at two levels:

* in-process — fixed-run summaries per (benchmark, frequency), managed
  runs per (benchmark, threshold); traces are kept only for the
  prediction base frequencies (1 and 4 GHz), other runs are summarized
  and dropped to bound memory;
* on disk, when constructed with a
  :class:`~repro.experiments.cache.ResultCache` — results are stored
  under content-addressed keys so later processes (CLI reruns, parallel
  workers, tests) skip the simulation entirely.

``runner.simulations`` counts the simulations this process actually ran,
which is how tests assert that a warm cache performs zero new work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.sweep import TraceSweep
from repro.energy.account import compute_energy
from repro.energy.manager import EnergyManager, ManagerConfig, ManagerDecision
from repro.energy.power import PowerModel
from repro.experiments import cache as cache_mod
from repro.experiments.cache import ResultCache
from repro.experiments.setup import ExperimentConfig, default_config
from repro.sim.run import simulate, simulate_managed
from repro.sim.trace import SimulationTrace
from repro.workloads.registry import (
    BenchmarkBundle,
    bundle_fingerprint,
    get_benchmark,
)

#: Frequencies whose traces are retained for offline prediction.
_BASE_FREQS = (1.0, 4.0)


@dataclass
class FixedRun:
    """Summary of one fixed-frequency ground-truth simulation."""

    benchmark: str
    freq_ghz: float
    total_ns: float
    gc_time_ns: float
    gc_cycles: int
    energy_j: float
    #: Retained only for prediction base frequencies.
    trace: Optional[SimulationTrace] = None


@dataclass
class ManagedRun:
    """Summary of one energy-managed simulation."""

    benchmark: str
    threshold: float
    total_ns: float
    energy_j: float
    decisions: List[ManagerDecision]

    @property
    def mean_freq_ghz(self) -> float:
        """Average frequency chosen across quanta."""
        if not self.decisions:
            return 0.0
        return sum(d.chosen_freq_ghz for d in self.decisions) / len(self.decisions)


class ExperimentRunner:
    """Simulation cache + convenience accessors for the experiment suite.

    ``cache`` is optional: without one the runner memoizes in-process
    only (the hermetic default for library use and unit tests); with one,
    every ground truth is first looked up on disk and persisted after
    computing, so separate processes share a single store.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        cache: Optional[ResultCache] = None,
        sweep: bool = True,
    ) -> None:
        self.config = config or default_config()
        self.cache = cache
        #: Evaluate predictions through the sweep kernels
        #: (:mod:`repro.core.sweep`) — one decomposition per benchmark
        #: trace shared across a whole figure's (predictor, target)
        #: grid, and one kernel call per governor quantum. Results are
        #: bit-identical either way; ``sweep=False`` keeps the scalar
        #: per-frequency loops for benchmarking and differential runs.
        self.sweep = sweep
        #: Worker-process width drivers that fan work out themselves
        #: (the fleet grid) should use; the CLI's ``--jobs`` sets it.
        #: Purely an execution detail — results are identical at any
        #: width.
        self.jobs = 1
        #: Simulations actually executed by this process (cache misses).
        self.simulations = 0
        self._bundles: Dict[str, BenchmarkBundle] = {}
        self._fixed: Dict[Tuple[str, float], FixedRun] = {}
        self._managed: Dict[Tuple[str, float], ManagedRun] = {}
        self._power_models: Dict[str, PowerModel] = {}
        self._fingerprints: Dict[str, dict] = {}
        self._sweeps: Dict[Tuple[str, float], TraceSweep] = {}

    def bundle(self, benchmark: str) -> BenchmarkBundle:
        """The (cached) benchmark bundle at the configured scale."""
        bundle = self._bundles.get(benchmark)
        if bundle is None:
            bundle = get_benchmark(benchmark, scale=self.config.scale)
            self._bundles[benchmark] = bundle
        return bundle

    def power_model(self, benchmark: str) -> PowerModel:
        """The power model for a benchmark's machine spec."""
        model = self._power_models.get(benchmark)
        if model is None:
            model = PowerModel(self.bundle(benchmark).spec)
            self._power_models[benchmark] = model
        return model

    def fingerprint(self, benchmark: str) -> dict:
        """Cache-key identity of a benchmark at the configured scale."""
        fp = self._fingerprints.get(benchmark)
        if fp is None:
            fp = bundle_fingerprint(benchmark, scale=self.config.scale)
            self._fingerprints[benchmark] = fp
        return fp

    # ------------------------------------------------------------------
    # Ground-truth runs
    # ------------------------------------------------------------------

    def fixed_run(self, benchmark: str, freq_ghz: float) -> FixedRun:
        """Simulate (once) ``benchmark`` at a fixed frequency."""
        key = (benchmark, round(freq_ghz, 6))
        cached = self._fixed.get(key)
        if cached is not None:
            return cached
        disk_key = None
        if self.cache is not None:
            disk_key = cache_mod.fixed_key(
                self.fingerprint(benchmark), freq_ghz, self.config.quantum_ns
            )
            run = self.cache.load_fixed(disk_key, benchmark)
            if run is not None:
                self._fixed[key] = run
                return run
        bundle = self.bundle(benchmark)
        result = simulate(
            bundle.program,
            freq_ghz,
            spec=bundle.spec,
            jvm_config=bundle.jvm_config,
            gc_model=bundle.gc_model,
            quantum_ns=self.config.quantum_ns,
        )
        self.simulations += 1
        energy = compute_energy(
            result.trace, bundle.spec, self.power_model(benchmark)
        )
        keep_trace = any(abs(freq_ghz - base) < 1e-9 for base in _BASE_FREQS)
        run = FixedRun(
            benchmark=benchmark,
            freq_ghz=freq_ghz,
            total_ns=result.total_ns,
            gc_time_ns=result.trace.gc_time_ns,
            gc_cycles=result.trace.gc_cycles,
            energy_j=energy.total_j,
            trace=result.trace if keep_trace else None,
        )
        if self.cache is not None and disk_key is not None:
            self.cache.store_fixed(disk_key, run)
        self._fixed[key] = run
        return run

    def fixed_runs_batch(
        self, benchmark: str, freqs_ghz: List[float]
    ) -> List[FixedRun]:
        """Simulate a benchmark's whole frequency fan-out in one batch.

        Byte-identical to calling :meth:`fixed_run` per frequency — same
        memo keys, same disk keys, same energy accounting — but the
        frequencies still missing from both cache levels are simulated
        through :func:`repro.sim.batch.run_batch` as one lane group, so
        the program is pre-timed once per distinct frequency in a single
        columnar pass instead of once per run. Sharing the bundle's
        ``gc_model`` across lanes is safe for the same reason it is safe
        across sequential :meth:`fixed_run` calls: its cycle programs are
        keyed by (cycle index, traced bytes, copied bytes) and do not
        depend on call order.
        """
        from repro.sim.batch import BatchInstance, run_batch

        misses: List[Tuple[Tuple[str, float], float, Optional[str]]] = []
        seen = set()
        for freq_ghz in freqs_ghz:
            key = (benchmark, round(freq_ghz, 6))
            if key in seen or key in self._fixed:
                continue
            disk_key = None
            if self.cache is not None:
                disk_key = cache_mod.fixed_key(
                    self.fingerprint(benchmark), freq_ghz, self.config.quantum_ns
                )
                run = self.cache.load_fixed(disk_key, benchmark)
                if run is not None:
                    self._fixed[key] = run
                    continue
            seen.add(key)
            misses.append((key, freq_ghz, disk_key))
        if misses:
            bundle = self.bundle(benchmark)
            results = run_batch(
                [
                    BatchInstance(
                        program=bundle.program,
                        freq_ghz=freq_ghz,
                        spec=bundle.spec,
                        jvm_config=bundle.jvm_config,
                        gc_model=bundle.gc_model,
                        quantum_ns=self.config.quantum_ns,
                        label=f"{benchmark}@{freq_ghz}",
                    )
                    for _, freq_ghz, _ in misses
                ]
            ).results
            self.simulations += len(misses)
            for (key, freq_ghz, disk_key), result in zip(misses, results):
                energy = compute_energy(
                    result.trace, bundle.spec, self.power_model(benchmark)
                )
                keep_trace = any(
                    abs(freq_ghz - base) < 1e-9 for base in _BASE_FREQS
                )
                run = FixedRun(
                    benchmark=benchmark,
                    freq_ghz=freq_ghz,
                    total_ns=result.total_ns,
                    gc_time_ns=result.trace.gc_time_ns,
                    gc_cycles=result.trace.gc_cycles,
                    energy_j=energy.total_j,
                    trace=result.trace if keep_trace else None,
                )
                if self.cache is not None and disk_key is not None:
                    self.cache.store_fixed(disk_key, run)
                self._fixed[key] = run
        return [self.fixed_run(benchmark, freq_ghz) for freq_ghz in freqs_ghz]

    def base_trace(self, benchmark: str, base_freq_ghz: float) -> SimulationTrace:
        """The retained trace of a base-frequency run (1 or 4 GHz)."""
        run = self.fixed_run(benchmark, base_freq_ghz)
        if run.trace is None:
            raise ValueError(
                f"no trace retained for {benchmark} at {base_freq_ghz} GHz; "
                f"base frequencies are {_BASE_FREQS}"
            )
        return run.trace

    def trace_sweep(self, benchmark: str, base_freq_ghz: float) -> TraceSweep:
        """The (memoized) sweep decomposition of a base-frequency trace.

        One :class:`~repro.core.sweep.TraceSweep` per (benchmark, base)
        is shared by every figure/table driver, so a whole error grid
        costs a single epoch decomposition per trace.
        """
        key = (benchmark, round(base_freq_ghz, 6))
        sweep = self._sweeps.get(key)
        if sweep is None:
            sweep = TraceSweep(self.base_trace(benchmark, base_freq_ghz))
            self._sweeps[key] = sweep
        return sweep

    # ------------------------------------------------------------------
    # Managed runs
    # ------------------------------------------------------------------

    def managed_run(self, benchmark: str, threshold: float) -> ManagedRun:
        """Simulate (once) ``benchmark`` under the energy manager."""
        key = (benchmark, round(threshold, 6))
        cached = self._managed.get(key)
        if cached is not None:
            return cached
        manager_config = ManagerConfig(tolerable_slowdown=threshold)
        disk_key = None
        if self.cache is not None:
            disk_key = cache_mod.managed_key(
                self.fingerprint(benchmark),
                manager_config,
                self.config.quantum_ns,
                prediction=cache_mod.prediction_fingerprint(self.sweep),
            )
            run = self.cache.load_managed(disk_key, benchmark)
            if run is not None:
                self._managed[key] = run
                return run
        bundle = self.bundle(benchmark)
        manager = EnergyManager(bundle.spec, manager_config, sweep=self.sweep)
        result = simulate_managed(
            bundle.program,
            manager,
            spec=bundle.spec,
            jvm_config=bundle.jvm_config,
            gc_model=bundle.gc_model,
            quantum_ns=self.config.quantum_ns,
        )
        self.simulations += 1
        energy = compute_energy(
            result.trace, bundle.spec, self.power_model(benchmark)
        )
        run = ManagedRun(
            benchmark=benchmark,
            threshold=threshold,
            total_ns=result.total_ns,
            energy_j=energy.total_j,
            decisions=list(manager.decisions),
        )
        if self.cache is not None and disk_key is not None:
            self.cache.store_managed(disk_key, run)
        self._managed[key] = run
        return run


_RUNNER: Optional[ExperimentRunner] = None


def get_runner(
    config: Optional[ExperimentConfig] = None,
    cache: Optional[ResultCache] = None,
    sweep: Optional[bool] = None,
) -> ExperimentRunner:
    """Process-wide runner so tests/benchmarks share ground-truth runs."""
    global _RUNNER
    if (
        _RUNNER is None
        or (config is not None and config != _RUNNER.config)
        or (cache is not None and cache is not _RUNNER.cache)
        or (sweep is not None and sweep != _RUNNER.sweep)
    ):
        _RUNNER = ExperimentRunner(
            config, cache=cache, sweep=True if sweep is None else sweep
        )
    return _RUNNER
