"""Experiment harness: regenerates every table and figure of the paper.

Each module reproduces one artifact of the evaluation:

========  ==========================================================
module    paper artifact
========  ==========================================================
table1    Table I   — benchmark characteristics at 1 GHz
table2    Table II  — simulated system parameters
fig1      Figure 1  — M+CRIT vs DEP+BURST average error vs target
fig3      Figure 3  — per-benchmark error, 6 models, both directions
fig4      Figure 4  — across-epoch vs per-epoch CTP
fig6      Figure 6  — energy savings at 5%/10% slowdown thresholds
fig7      Figure 7  — dynamic manager vs static-optimal
========  ==========================================================

All experiments share an :class:`~repro.experiments.runner.ExperimentRunner`
that caches ground-truth simulations (the expensive part), so running the
whole suite simulates each benchmark once per needed frequency. Construct
the runner with a :class:`~repro.experiments.cache.ResultCache` and the
ground truths persist across processes (content-addressed, corruption
tolerant); :func:`~repro.experiments.parallel.execute` fans a declared
work grid out over worker processes sharing that store.

The ``REPRO_SCALE`` environment variable (default 1.0) shortens every
benchmark proportionally — error structure and energy trends are
scale-invariant, so ``REPRO_SCALE=0.3`` gives a quick faithful pass.
"""

from repro.experiments.setup import ExperimentConfig, default_config
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.parallel import WorkItem, execute
from repro.experiments.runner import ExperimentRunner, get_runner

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "ResultCache",
    "WorkItem",
    "default_cache_dir",
    "default_config",
    "execute",
    "get_runner",
]
