"""Shared experiment configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Tuple

from repro.common.errors import ConfigError
from repro.workloads.dacapo import COMPUTE_INTENSIVE, MEMORY_INTENSIVE, dacapo_names


def _scale_from_env() -> float:
    """Read REPRO_SCALE (default 1.0 = the paper's full run lengths)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ConfigError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if scale <= 0:
        raise ConfigError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


@dataclass(frozen=True)
class ExperimentConfig:
    """What the experiment suite runs."""

    #: Benchmark run-length scale (1.0 reproduces Table I durations).
    scale: float = field(default_factory=_scale_from_env)
    benchmarks: Tuple[str, ...] = field(default_factory=dacapo_names)
    #: Target frequencies predicted from the 1 GHz base (Figures 1, 3a).
    targets_up_ghz: Tuple[float, ...] = (2.0, 3.0, 4.0)
    #: Target frequencies predicted from the 4 GHz base (Figure 3b).
    targets_down_ghz: Tuple[float, ...] = (3.0, 2.0, 1.0)
    #: Fixed frequencies swept for the static-optimal oracle (Figure 7).
    static_freqs_ghz: Tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
    #: Slowdown thresholds of the energy case study (Figures 6, 7).
    thresholds: Tuple[float, ...] = (0.05, 0.10)
    #: Scheduling quantum (paper: 5 ms).
    quantum_ns: float = 5.0e6

    @property
    def memory_intensive(self) -> Tuple[str, ...]:
        """Memory-intensive subset, preserving configured order."""
        return tuple(b for b in self.benchmarks if b in MEMORY_INTENSIVE)

    @property
    def compute_intensive(self) -> Tuple[str, ...]:
        """Compute-intensive subset, preserving configured order."""
        return tuple(b for b in self.benchmarks if b in COMPUTE_INTENSIVE)


def default_config() -> ExperimentConfig:
    """The suite configuration (honours ``REPRO_SCALE``)."""
    return ExperimentConfig()
