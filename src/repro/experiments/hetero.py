"""Heterogeneous hardware: the energy manager across node × uncore grids.

The paper's energy-manager case study (Figure 6) runs on one machine:
the i7-4770K ladder, one V/f curve, one uncore clock. This experiment
re-runs the manager's *policy question* — lowest frequency within a
tolerable slowdown — across the heterogeneous axes of PR 9:

* **technology node** — each (node, scaling) point of
  :data:`NODE_GRID` re-derives the V/f table with Lumos-style Vdd
  scaling and a Vth floor, so deep ITRS nodes lose their lowest set
  points (``f_min`` rises: dim silicon) while conservative nodes keep
  the full ladder at higher voltage;
* **uncore frequency** — each scale in :data:`UNCORE_SCALES`
  multiplies the non-scaling (memory/stall) portion of every epoch,
  evaluated through the sweep kernels' ``(core_freq, uncore_scale)``
  target tuples.

The evaluation is *static re-prediction* over the retained 4 GHz base
trace: for every grid point, DEP+BURST predicts the whole run at every
supported set point of the node's table, the manager's min-energy rule
picks the lowest one within the threshold, and the node-scaled power
model turns the pick into an energy estimate. The predictors only see
counters and epochs, so no re-simulation is needed — the whole grid
costs one trace per benchmark and is fully deterministic (the property
the CI ``hetero-smoke`` job pins with cached-vs-fresh byte parity on
the figure JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.burst import with_burst
from repro.core.crit import crit_nonscaling
from repro.core.dep import DepPredictor
from repro.energy.power import PowerModel, node_power_config
from repro.energy.vftable import NodeVfTable, get_tech_node
from repro.experiments.report import ExperimentResult, pct
from repro.experiments.runner import ExperimentRunner

#: (node_nm, scaling) grid: the four ITRS nodes plus the conservative
#: 16 nm point, whose full ladder at high voltage contrasts with ITRS
#: 16 nm's clipped one.
NODE_GRID: Tuple[Tuple[int, str], ...] = (
    (45, "itrs"),
    (32, "itrs"),
    (22, "itrs"),
    (16, "itrs"),
    (16, "cons"),
)

#: Uncore scales (reference_uncore / target_uncore): 1.0 is the paper's
#: machine, 2.0 a half-speed uncore doubling memory/stall time.
UNCORE_SCALES: Tuple[float, ...] = (1.0, 2.0)

#: Tolerable slowdown of the manager policy being re-run.
THRESHOLD = 0.05

#: Base frequency whose retained trace feeds the whole grid.
BASE_FREQ_GHZ = 4.0

#: Schema version of the figure payload.
FIGURE_VERSION = 1


def _predictor() -> DepPredictor:
    return DepPredictor(estimator=with_burst(crit_nonscaling), name="DEP+BURST")


def work(config):
    """Ground-truth grid (parallel prefetch hook): one 4 GHz run each."""
    from repro.experiments.parallel import fixed_items

    return fixed_items(config.benchmarks, (BASE_FREQ_GHZ,))


def _aggregate_counters(trace):
    """Whole-run counter totals (the energy proxy's activity input)."""
    total = None
    for record in trace.intervals:
        if total is None:
            total = record.aggregate().copy()
        else:
            total.add(record.aggregate())
    if total is None:
        raise ValueError(f"trace of {trace.program_name} has no intervals")
    return total


def evaluate_grid_point(
    runner: ExperimentRunner,
    benchmark: str,
    node_nm: int,
    scaling: str,
    uncore_scale: float,
    predictor: Optional[DepPredictor] = None,
) -> Dict[str, float]:
    """The manager's static pick for one (benchmark, node, uncore) cell.

    Returns the cell's figure record: the node's frequency floor, the
    chosen set point, its predicted slowdown against the node's fastest
    set point, the predicted time, and the estimated energy saving of
    the pick versus running the node flat-out.
    """
    predictor = predictor or _predictor()
    spec = runner.bundle(benchmark).spec
    table = NodeVfTable(
        spec,
        node_nm,
        scaling,
        min_freq_ghz=spec.min_freq_ghz,
        max_freq_ghz=spec.max_freq_ghz,
        freq_step_ghz=spec.freq_step_ghz,
    )
    candidates = table.set_points()
    f_max = candidates[-1]
    sweep = runner.trace_sweep(benchmark, BASE_FREQ_GHZ)
    if uncore_scale == 1.0:
        targets: List = list(candidates)
    else:
        targets = [(freq, uncore_scale) for freq in candidates]
    values = sweep.predict(predictor, targets, base_freq_ghz=BASE_FREQ_GHZ)
    predictions = dict(zip(candidates, values))
    predicted_at_max = predictions[f_max]
    chosen, chosen_slowdown = f_max, 0.0
    if predicted_at_max > 0:
        for candidate in candidates:  # ascending: lowest within bound wins
            slowdown = predictions[candidate] / predicted_at_max - 1.0
            if slowdown <= THRESHOLD:
                chosen, chosen_slowdown = candidate, slowdown
                break
    node = get_tech_node(node_nm, scaling)
    model = PowerModel(spec, node_power_config(node), vf_table=table)
    counters = _aggregate_counters(runner.base_trace(benchmark, BASE_FREQ_GHZ))
    energy_chosen = model.interval_energy_j(
        counters, predictions[chosen], chosen
    )
    energy_flat = model.interval_energy_j(counters, predicted_at_max, f_max)
    saving = 1.0 - energy_chosen / energy_flat if energy_flat > 0 else 0.0
    return {
        "f_min_ghz": table.f_min_ghz,
        "f_max_ghz": table.f_max_ghz,
        "chosen_freq_ghz": chosen,
        "predicted_slowdown": chosen_slowdown,
        "predicted_ms": predictions[chosen] * 1e-6,
        "energy_saving": saving,
    }


def figure_payload(runner: ExperimentRunner) -> Dict:
    """The full node × uncore grid as a JSON-compatible figure payload.

    Deterministic for a fixed configuration: the grid is pure
    re-prediction over retained base traces, and every float comes from
    the same IEEE-754 operations regardless of cache state — the CI
    smoke job byte-compares a cached and a fresh rendering.
    """
    predictor = _predictor()
    benchmarks: Dict[str, Dict] = {}
    for benchmark in runner.config.benchmarks:
        cells: Dict[str, Dict] = {}
        for node_nm, scaling in NODE_GRID:
            for uncore_scale in UNCORE_SCALES:
                key = f"{node_nm}nm-{scaling}/uncore-{uncore_scale:g}x"
                cells[key] = evaluate_grid_point(
                    runner, benchmark, node_nm, scaling, uncore_scale,
                    predictor,
                )
        benchmarks[benchmark] = cells
    return {
        "version": FIGURE_VERSION,
        "threshold": THRESHOLD,
        "base_freq_ghz": BASE_FREQ_GHZ,
        "scale": runner.config.scale,
        "node_grid": [f"{nm}nm-{sc}" for nm, sc in NODE_GRID],
        "uncore_scales": list(UNCORE_SCALES),
        "benchmarks": benchmarks,
    }


def payload_bytes(payload: Dict) -> bytes:
    """Canonical byte rendering (the CI parity comparand)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def write_figure(path: str, runner: ExperimentRunner) -> Dict:
    """Render the figure payload to ``path``; return the payload."""
    payload = figure_payload(runner)
    with open(path, "wb") as handle:
        handle.write(payload_bytes(payload))
    return payload


def run(runner: ExperimentRunner) -> List[ExperimentResult]:
    """The node × uncore tables for the experiment report."""
    payload = figure_payload(runner)
    results: List[ExperimentResult] = []
    for uncore_scale in UNCORE_SCALES:
        result = ExperimentResult(
            experiment_id=f"Hetero (uncore {uncore_scale:g}x)",
            title=(
                f"Manager policy across tech nodes at uncore scale "
                f"{uncore_scale:g} (threshold {THRESHOLD:.0%})"
            ),
            headers=[
                "benchmark",
                "node",
                "f_min (GHz)",
                "chosen (GHz)",
                "slowdown",
                "energy saving",
            ],
        )
        for benchmark in runner.config.benchmarks:
            for node_nm, scaling in NODE_GRID:
                key = f"{node_nm}nm-{scaling}/uncore-{uncore_scale:g}x"
                cell = payload["benchmarks"][benchmark][key]
                result.rows.append(
                    (
                        benchmark,
                        f"{node_nm}nm-{scaling}",
                        f"{cell['f_min_ghz']:.3f}",
                        f"{cell['chosen_freq_ghz']:.3f}",
                        pct(cell["predicted_slowdown"]),
                        pct(cell["energy_saving"]),
                    )
                )
        results.append(result)
    return results


def main(argv=None) -> int:
    """``python -m repro.experiments.hetero --out fig.json``.

    The standalone renderer the CI smoke job drives twice (shared cache
    directory, then again against the warm cache) and byte-compares.
    """
    parser = argparse.ArgumentParser(
        description="Render the heterogeneous node x uncore figure JSON."
    )
    parser.add_argument("--out", required=True, help="output JSON path")
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent cache location (default: REPRO_CACHE_DIR)",
    )
    args = parser.parse_args(argv)
    from repro.experiments.cache import ResultCache, default_cache_dir
    from repro.experiments.runner import get_runner

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = get_runner(cache=cache)
    payload = write_figure(args.out, runner)
    n_cells = sum(len(cells) for cells in payload["benchmarks"].values())
    print(f"wrote {args.out}: {n_cells} grid cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
