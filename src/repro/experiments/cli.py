"""Command-line entry point: regenerate all (or selected) experiments.

Installed as ``repro-experiments``::

    repro-experiments                    # everything, REPRO_SCALE honoured
    repro-experiments fig3 fig6          # a subset
    REPRO_SCALE=0.3 repro-experiments table1
    repro-experiments --jobs 8           # fan ground truths out over 8 workers
    repro-experiments cache stats        # inspect the persistent result cache
    repro-experiments cache clear

Ground-truth simulations are persisted in a content-addressed cache
(``~/.cache/repro``, override with ``REPRO_CACHE_DIR`` or ``--cache-dir``)
keyed by every input that determines the result, so a second invocation
at the same configuration re-simulates nothing. ``--no-cache`` opts out;
``--jobs N`` (or ``REPRO_JOBS``) runs the needed grid in parallel worker
processes before the tables and figures are rendered serially.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List

from repro.common.errors import ConfigError
from repro.common.profiling import UNSET, resolve_profile_path, run_maybe_profiled
from repro.experiments import (
    fig1,
    fig3,
    fig4,
    fig6,
    fig7,
    fleet_study,
    hetero,
    sensitivity,
    sequential,
    serve_replay,
    table1,
    table2,
)
from repro.experiments.cache import ResultCache, default_cache_dir, describe
from repro.experiments.parallel import WorkItem, execute, resolve_jobs
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import ExperimentRunner, get_runner

#: Experiment name -> driver module (each exposes ``run`` and ``work``).
_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "sequential": sequential,
    "fig1": fig1,
    "fig3": fig3,
    "sensitivity": sensitivity,
    "fig4": fig4,
    "fig6": fig6,
    "fig7": fig7,
    "hetero": hetero,
    "serve": serve_replay,
    "fleet": fleet_study,
}

#: Order that maximizes ground-truth cache reuse.
_DEFAULT_ORDER = (
    "table2", "table1", "sequential", "fig1", "fig3", "sensitivity",
    "fig4", "fig6", "fig7", "hetero", "serve", "fleet",
)


def _as_results(value) -> List[ExperimentResult]:
    if isinstance(value, ExperimentResult):
        return [value]
    return list(value)


def _modules(names: Iterable[str]):
    modules = []
    for name in names:
        module = _EXPERIMENTS.get(name)
        if module is None:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}"
            )
        modules.append((name, module))
    return modules


def suite_work(names: Iterable[str], runner: ExperimentRunner) -> List[WorkItem]:
    """Deduplicated ground-truth grid of the named experiments."""
    items = set()
    for _, module in _modules(names):
        items.update(module.work(runner.config))
    return sorted(items)


def run_experiments(
    names: Iterable[str], runner: ExperimentRunner
) -> List[ExperimentResult]:
    """Run the named experiments; return their results in order."""
    results: List[ExperimentResult] = []
    for _, module in _modules(names):
        results.extend(_as_results(module.run(runner)))
    return results


def cache_main(argv=None) -> int:
    """``repro-experiments cache [stats|clear]``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description="Inspect or clear the persistent ground-truth cache.",
    )
    parser.add_argument(
        "action", nargs="?", default="stats", choices=("stats", "clear")
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached file(s) from {cache.root}")
    else:
        print(describe(cache))
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "--profile", nargs="?", default=UNSET, metavar="PSTATS",
        help="profile the run with cProfile; optional dump path "
             "(default repro-experiments.pstats; REPRO_PROFILE=1 also "
             "enables)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(_DEFAULT_ORDER),
        help=f"subset of {sorted(_EXPERIMENTS)} (default: all)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for ground-truth simulations "
        "(default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result cache location "
        "(default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent result cache",
    )
    sweep_group = parser.add_mutually_exclusive_group()
    sweep_group.add_argument(
        "--sweep",
        dest="sweep",
        action="store_true",
        default=True,
        help="evaluate prediction grids through the sweep kernels: one "
        "epoch decomposition per benchmark trace shared across all "
        "(predictor, target) pairs (default)",
    )
    sweep_group.add_argument(
        "--no-sweep",
        dest="sweep",
        action="store_false",
        help="use the scalar per-frequency prediction loops "
        "(bit-identical results, mainly for benchmarking)",
    )
    batch_group = parser.add_mutually_exclusive_group()
    batch_group.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=False,
        help="simulate each benchmark's fixed-frequency fan-out as one "
        "batched run (repro.sim.batch): the program is pre-timed once "
        "per frequency in a single columnar pass; bit-identical results",
    )
    batch_group.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="one simulation per (benchmark, frequency) grid cell "
        "(default)",
    )
    args = parser.parse_args(argv)
    profile_path = resolve_profile_path(args.profile, "repro-experiments.pstats")
    return run_maybe_profiled(lambda: _run_suite(parser, args), profile_path)


def _run_suite(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = get_runner(cache=cache, sweep=args.sweep)
    try:
        jobs = resolve_jobs(args.jobs)
    except ConfigError as exc:
        parser.error(str(exc))
    runner.jobs = jobs
    print(
        f"# DEP+BURST reproduction — scale={runner.config.scale}, "
        f"benchmarks={', '.join(runner.config.benchmarks)}"
    )
    started = time.time()
    grid = suite_work(args.experiments, runner)
    if grid:
        print(
            f"# ground truths: {len(grid)} runs, {jobs} job(s), "
            f"cache {'off' if cache is None else cache.root}"
        )
        report = execute(runner, grid, jobs=jobs, batch=args.batch)
        for item, error in report.recovered:
            print(f"# worker failed on {item} ({error}); recomputed serially")
    for result in run_experiments(args.experiments, runner):
        print()
        print(result.to_text())
        sys.stdout.flush()
    stats = runner.cache.stats if runner.cache is not None else None
    cache_note = (
        f", {stats.hits} cache hits" if stats is not None else ""
    )
    print(
        f"\n# done in {time.time() - started:.0f}s — "
        f"{runner.simulations} simulation(s) in-process{cache_note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
