"""Command-line entry point: regenerate all (or selected) experiments.

Installed as ``repro-experiments``::

    repro-experiments                 # everything, REPRO_SCALE honoured
    repro-experiments fig3 fig6      # a subset
    REPRO_SCALE=0.3 repro-experiments table1
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List

from repro.experiments import (
    fig1,
    fig3,
    fig4,
    fig6,
    fig7,
    sensitivity,
    sequential,
    table1,
    table2,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import ExperimentRunner, get_runner

_EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "sequential": sequential.run,
    "fig1": fig1.run,
    "fig3": fig3.run,
    "sensitivity": sensitivity.run,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
}

#: Order that maximizes ground-truth cache reuse.
_DEFAULT_ORDER = (
    "table2", "table1", "sequential", "fig1", "fig3", "sensitivity",
    "fig4", "fig6", "fig7",
)


def _as_results(value) -> List[ExperimentResult]:
    if isinstance(value, ExperimentResult):
        return [value]
    return list(value)


def run_experiments(
    names: Iterable[str], runner: ExperimentRunner
) -> List[ExperimentResult]:
    """Run the named experiments; return their results in order."""
    results: List[ExperimentResult] = []
    for name in names:
        runner_fn = _EXPERIMENTS.get(name)
        if runner_fn is None:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}"
            )
        results.extend(_as_results(runner_fn(runner)))
    return results


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(_DEFAULT_ORDER),
        help=f"subset of {sorted(_EXPERIMENTS)} (default: all)",
    )
    args = parser.parse_args(argv)
    runner = get_runner()
    print(
        f"# DEP+BURST reproduction — scale={runner.config.scale}, "
        f"benchmarks={', '.join(runner.config.benchmarks)}"
    )
    started = time.time()
    for result in run_experiments(args.experiments, runner):
        print()
        print(result.to_text())
        sys.stdout.flush()
    print(f"\n# done in {time.time() - started:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
