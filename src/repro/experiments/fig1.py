"""Figure 1: average absolute error vs target frequency, M+CRIT vs DEP+BURST.

The paper's motivating figure predicts performance at 2, 3 and 4 GHz from
a 1 GHz base run and contrasts the naive M+CRIT extension (27% average
absolute error at 4 GHz) with DEP+BURST (6%).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.evaluate import prediction_error
from repro.core.predictors import make_predictor
from repro.experiments.report import ExperimentResult, mean_abs, pct_abs
from repro.experiments.runner import ExperimentRunner

#: Approximate paper values (average absolute error, base 1 GHz).
PAPER_MCRIT = {2.0: 0.12, 3.0: 0.20, 4.0: 0.27}
PAPER_DEPBURST = {2.0: 0.03, 3.0: 0.05, 4.0: 0.06}

_BASE_GHZ = 1.0


def work(config):
    """Ground-truth grid Figure 1 needs (parallel prefetch hook)."""
    from repro.experiments.parallel import fixed_items

    return fixed_items(
        config.benchmarks, sorted({_BASE_GHZ, *config.targets_up_ghz})
    )


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Regenerate Figure 1's two error-vs-frequency series."""
    config = runner.config
    mcrit = make_predictor("M+CRIT")
    depburst = make_predictor("DEP+BURST")
    result = ExperimentResult(
        experiment_id="Fig 1",
        title="Average absolute prediction error vs target (base 1 GHz)",
        headers=[
            "target (GHz)",
            "M+CRIT",
            "paper M+CRIT",
            "DEP+BURST",
            "paper DEP+BURST",
        ],
        notes="averaged over all benchmarks; paper values read from Figure 1",
    )
    targets = list(config.targets_up_ghz)
    # model -> benchmark -> target -> signed error. Sweep mode evaluates
    # each benchmark's whole target grid from one shared decomposition.
    per_bench: Dict[str, Dict[str, Dict[float, float]]] = {
        "mcrit": {},
        "depburst": {},
    }
    for benchmark in config.benchmarks:
        actuals = {
            t: runner.fixed_run(benchmark, t).total_ns for t in targets
        }
        for key, predictor in (("mcrit", mcrit), ("depburst", depburst)):
            if runner.sweep:
                sweep = runner.trace_sweep(benchmark, _BASE_GHZ)
                estimates = sweep.predict(predictor, targets)
            else:
                base = runner.base_trace(benchmark, _BASE_GHZ)
                estimates = [
                    predictor.predict_total_ns(base, t) for t in targets
                ]
            per_bench[key][benchmark] = {
                t: prediction_error(est, actuals[t])
                for t, est in zip(targets, estimates)
            }
    for target in targets:
        errors: Dict[str, List[float]] = {
            key: [
                per_bench[key][benchmark][target]
                for benchmark in config.benchmarks
            ]
            for key in ("mcrit", "depburst")
        }
        result.rows.append(
            (
                f"{target:.0f}",
                pct_abs(mean_abs(errors["mcrit"])),
                pct_abs(PAPER_MCRIT.get(target, float("nan"))),
                pct_abs(mean_abs(errors["depburst"])),
                pct_abs(PAPER_DEPBURST.get(target, float("nan"))),
            )
        )
    return result
