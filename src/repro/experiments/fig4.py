"""Figure 4: across-epoch vs per-epoch critical thread prediction.

DEP+BURST is evaluated with Algorithm 1's across-epoch delta counters
against the stateless per-epoch alternative. Paper means: 1→4 GHz 6% vs
10%, 4→1 GHz 8% vs 14% — carrying critical-thread slack across epochs is
a key component of the model.
"""

from __future__ import annotations

from typing import List

from repro.core.evaluate import prediction_error
from repro.core.predictors import make_predictor
from repro.experiments.report import ExperimentResult, mean_abs, pct, pct_abs
from repro.experiments.runner import ExperimentRunner

PAPER_MEANS = {
    ("up", "across"): 0.06,
    ("up", "per"): 0.10,
    ("down", "across"): 0.08,
    ("down", "per"): 0.14,
}


def work(config):
    """Ground-truth grid Figure 4 needs (parallel prefetch hook)."""
    from repro.experiments.parallel import fixed_items

    return fixed_items(config.benchmarks, (1.0, 4.0))


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Regenerate Figure 4 (farthest target in each direction)."""
    config = runner.config
    across = make_predictor("DEP+BURST", across_epoch_ctp=True)
    per = make_predictor("DEP+BURST", across_epoch_ctp=False)
    result = ExperimentResult(
        experiment_id="Fig 4",
        title="DEP+BURST: across-epoch vs per-epoch CTP (signed error)",
        headers=[
            "benchmark",
            "1->4 across",
            "1->4 per-epoch",
            "4->1 across",
            "4->1 per-epoch",
        ],
        notes="paper means: 1->4 6%/10%, 4->1 8%/14% (across/per-epoch)",
    )
    summary = {"up_a": [], "up_p": [], "down_a": [], "down_p": []}
    for benchmark in config.benchmarks:
        actual4 = runner.fixed_run(benchmark, 4.0).total_ns
        actual1 = runner.fixed_run(benchmark, 1.0).total_ns
        if runner.sweep:
            # Both CTP policies share each base trace's decomposition
            # (the TraceSweep caches the clamped epoch arrays).
            sweep1 = runner.trace_sweep(benchmark, 1.0)
            sweep4 = runner.trace_sweep(benchmark, 4.0)
            [est_up_a] = sweep1.predict(across, [4.0])
            [est_up_p] = sweep1.predict(per, [4.0])
            [est_down_a] = sweep4.predict(across, [1.0])
            [est_down_p] = sweep4.predict(per, [1.0])
        else:
            base1 = runner.base_trace(benchmark, 1.0)
            base4 = runner.base_trace(benchmark, 4.0)
            est_up_a = across.predict_total_ns(base1, 4.0)
            est_up_p = per.predict_total_ns(base1, 4.0)
            est_down_a = across.predict_total_ns(base4, 1.0)
            est_down_p = per.predict_total_ns(base4, 1.0)
        up_a = prediction_error(est_up_a, actual4)
        up_p = prediction_error(est_up_p, actual4)
        down_a = prediction_error(est_down_a, actual1)
        down_p = prediction_error(est_down_p, actual1)
        summary["up_a"].append(up_a)
        summary["up_p"].append(up_p)
        summary["down_a"].append(down_a)
        summary["down_p"].append(down_p)
        result.rows.append(
            (benchmark, pct(up_a), pct(up_p), pct(down_a), pct(down_p))
        )
    result.rows.append(
        (
            "MEAN |err|",
            pct_abs(mean_abs(summary["up_a"])),
            pct_abs(mean_abs(summary["up_p"])),
            pct_abs(mean_abs(summary["down_a"])),
            pct_abs(mean_abs(summary["down_p"])),
        )
    )
    result.rows.append(
        (
            "paper mean",
            pct_abs(PAPER_MEANS[("up", "across")]),
            pct_abs(PAPER_MEANS[("up", "per")]),
            pct_abs(PAPER_MEANS[("down", "across")]),
            pct_abs(PAPER_MEANS[("down", "per")]),
        )
    )
    return result
