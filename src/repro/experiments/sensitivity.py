"""Sensitivity: mean error of every model at every target frequency.

Figure 1 plots only M+CRIT and DEP+BURST; Figure 3 shows per-benchmark
bars at three targets. This experiment renders the full underlying
surface — mean absolute error of all six models at every evaluated target
in both directions — which makes the paper's 'errors grow with prediction
distance' observation directly visible per model. Reuses Figure 3's
cached error grid, so it is free once fig3 has run.
"""

from __future__ import annotations

from typing import List

from repro.core.predictors import predictor_names
from repro.experiments import fig3
from repro.experiments.report import ExperimentResult, pct_abs
from repro.experiments.runner import ExperimentRunner


def work(config):
    """Same ground-truth grid as Figure 3 (whose error grid this reuses)."""
    return fig3.work(config)


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Render the error-vs-target surface for all models."""
    config = runner.config
    data = fig3.collect(runner)
    models = predictor_names()
    result = ExperimentResult(
        experiment_id="Sensitivity",
        title="Mean |error| vs target frequency, all models",
        headers=["base -> target"] + models,
        notes="errors grow with prediction distance; +BURST flattens the "
              "growth, DEP+BURST most of all",
    )
    rows: List = []
    for target in config.targets_up_ghz:
        rows.append(
            [f"1 GHz -> {target:g} GHz"]
            + [pct_abs(data.mean_abs_at("up", m, target)) for m in models]
        )
    for target in config.targets_down_ghz:
        rows.append(
            [f"4 GHz -> {target:g} GHz"]
            + [pct_abs(data.mean_abs_at("down", m, target)) for m in models]
        )
    result.rows = rows
    return result
