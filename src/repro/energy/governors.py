"""Baseline OS-style DVFS governors.

The paper's energy manager is predictor-driven: it *knows* (predicts) what
a frequency change will cost before making it. Real operating systems ship
much simpler policies; implementing them gives the comparison every DVFS
paper gets asked for:

* :class:`PerformanceGovernor` — pin the maximum frequency;
* :class:`PowersaveGovernor` — pin the minimum frequency;
* :class:`OndemandGovernor` — the classic utilization feedback loop: raise
  to a high frequency when core utilization exceeds ``up_threshold``,
  otherwise step down proportionally. No prediction, no performance
  guarantee — which is exactly what the comparison shows: ondemand either
  wastes energy (it cannot tell memory stalls from useful work, both look
  "busy") or breaks the slowdown budget, depending on tuning.

All governors match the simulator's governor interface
``(IntervalRecord, SimulationTrace) -> Optional[float]``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigError
from repro.arch.specs import MachineSpec
from repro.sim.intervals import IntervalRecord
from repro.sim.trace import SimulationTrace


class PerformanceGovernor:
    """Always the highest frequency (the evaluation baseline)."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    def __call__(
        self, record: IntervalRecord, trace: SimulationTrace
    ) -> Optional[float]:
        """Keep (or restore) the maximum frequency."""
        if record.freq_ghz != self.spec.max_freq_ghz:
            return self.spec.max_freq_ghz
        return None


class PowersaveGovernor:
    """Always the lowest frequency."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    def __call__(
        self, record: IntervalRecord, trace: SimulationTrace
    ) -> Optional[float]:
        """Keep (or restore) the minimum frequency."""
        if record.freq_ghz != self.spec.min_freq_ghz:
            return self.spec.min_freq_ghz
        return None


class OndemandGovernor:
    """Linux-ondemand-style utilization feedback.

    Utilization of an interval is busy core time over capacity. Above
    ``up_threshold`` the governor jumps straight to the maximum frequency
    (ondemand's signature move); below it, it picks the lowest frequency
    that would have kept utilization just under the threshold
    (``f_next = f_cur * util / up_threshold``), as the real governor does.
    """

    def __init__(
        self,
        spec: MachineSpec,
        up_threshold: float = 0.85,
    ) -> None:
        if not 0.0 < up_threshold <= 1.0:
            raise ConfigError(
                f"up_threshold must be in (0, 1], got {up_threshold}"
            )
        self.spec = spec
        self.up_threshold = up_threshold
        self.decisions: List[float] = []

    def _utilization(self, record: IntervalRecord) -> float:
        capacity = self.spec.n_cores * record.duration_ns
        if capacity <= 0:
            return 0.0
        return min(record.busy_core_ns / capacity, 1.0)

    def __call__(
        self, record: IntervalRecord, trace: SimulationTrace
    ) -> Optional[float]:
        """One feedback step on the finished interval."""
        utilization = self._utilization(record)
        if utilization >= self.up_threshold:
            target = self.spec.max_freq_ghz
        else:
            ideal = record.freq_ghz * utilization / self.up_threshold
            candidates = [
                f for f in self.spec.frequencies() if f >= ideal
            ]
            target = candidates[0] if candidates else self.spec.max_freq_ghz
        self.decisions.append(target)
        if target != record.freq_ghz:
            return target
        return None
