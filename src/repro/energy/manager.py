"""The slack-bounded energy manager (paper Section VI, Figure 5).

Every scheduling quantum (5 ms), the manager:

1. reads the DVFS counters the finished interval accumulated,
2. decomposes the interval into synchronization epochs and uses the
   predictor (DEP+BURST by default) to estimate the interval's duration at
   the **highest** frequency and at every candidate set point,
3. picks the lowest frequency whose predicted slowdown relative to the
   highest frequency stays within the user's ``tolerable_slowdown``,
4. honours a ``hold_off`` count of quanta between consecutive changes.

The guarantee argument from the paper: if every interval individually
stays within x% of its highest-frequency duration, the whole run does.
The manager therefore needs the predictor to be accurate in *both*
directions — under-prediction wastes energy, over-prediction breaks the
performance guarantee — which is exactly why Figure 6's slowdowns track
the threshold only as well as the predictor allows.

The quantum-step logic lives in :class:`EnergyManagerSession`, which is
callable step by step on ``(IntervalRecord, epochs)`` pairs without a
:class:`~repro.sim.trace.SimulationTrace` — this is what the online
prediction service (:mod:`repro.serve`) drives over the wire.
:class:`EnergyManager` remains the in-process governor: a thin wrapper
that slices each interval's epochs out of the live trace and delegates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.arch.specs import MachineSpec
from repro.core.burst import with_burst
from repro.core.crit import crit_nonscaling
from repro.core.dep import DepPredictor
from repro.core.epochs import Epoch, extract_epochs
from repro.core.sweep import EpochArrays, sweep_predict_epochs
from repro.sim.intervals import IntervalRecord
from repro.sim.trace import SimulationTrace


@dataclass(frozen=True)
class ManagerConfig:
    """User-facing knobs of the energy manager."""

    #: Maximum tolerated slowdown vs. the highest frequency (e.g. 0.05).
    tolerable_slowdown: float = 0.05
    #: Quanta to wait between frequency changes (paper uses 1).
    hold_off: int = 1
    #: Ignore intervals with less busy time than this (idle tails).
    min_busy_ns: float = 10_000.0
    #: Extension beyond the paper: bank unused slowdown budget. The
    #: paper's per-interval guarantee is conservative — prediction bias
    #: and set-point quantization leave part of the budget unspent every
    #: quantum. With banking on, the manager tracks the cumulative
    #: achieved slowdown (estimated against the highest frequency) and
    #: widens/narrows the per-interval bound to steer the *whole-run*
    #: slowdown toward the user's threshold. The instantaneous bound is
    #: still clamped to at most twice the configured threshold.
    slack_banking: bool = False
    #: Selection objective among the candidates that satisfy the slowdown
    #: bound. ``"min-energy"`` is the paper's policy (lowest frequency =
    #: minimum energy). ``"min-edp"`` — an extension using the standard
    #: energy-delay-product metric of the energy-management literature —
    #: weighs predicted energy against predicted time, typically settling
    #: on a higher frequency than min-energy.
    objective: str = "min-energy"

    def __post_init__(self) -> None:
        if self.tolerable_slowdown < 0:
            raise ConfigError("tolerable_slowdown must be >= 0")
        if self.hold_off < 1:
            raise ConfigError("hold_off must be >= 1")
        if self.objective not in ("min-energy", "min-edp"):
            raise ConfigError(
                f"objective must be 'min-energy' or 'min-edp', "
                f"got {self.objective!r}"
            )


@dataclass
class ManagerDecision:
    """Diagnostic record of one quantum decision."""

    interval_index: int
    base_freq_ghz: float
    chosen_freq_ghz: float
    predicted_slowdown: float


def interval_epochs(
    record: IntervalRecord, trace: SimulationTrace
) -> List[Epoch]:
    """Epochs of one interval, including its boundary markers.

    The opening INTERVAL marker sits just before ``event_lo`` (except
    for the first interval, whose opener is the SPAWN sequence) and the
    closing marker right at ``event_hi``. Shared by the in-process
    governor and the serve replay client, so both feed the session the
    same epoch slices.
    """
    lo = max(0, record.event_lo - 1)
    hi = min(len(trace.events), record.event_hi + 1)
    return extract_epochs(trace.events[lo:hi])


class EnergyManagerSession:
    """Step-by-step quantum decision engine of the energy manager.

    Holds all cross-quantum state — hold-off countdown, slack-banking
    accumulators, the decision log — and consumes one
    ``(IntervalRecord, epochs)`` pair per :meth:`step` call. It never
    touches a trace, so a remote caller (the ``govern`` endpoint of
    :mod:`repro.serve`) can drive it from serialized interval payloads
    and obtain the byte-identical decision sequence of an in-process
    :class:`EnergyManager` run.
    """

    def __init__(
        self,
        spec: MachineSpec,
        config: Optional[ManagerConfig] = None,
        predictor: Optional[DepPredictor] = None,
        power_model: Optional["PowerModel"] = None,
        sweep: bool = True,
        candidates: Optional[Sequence[float]] = None,
        uncore_scale: float = 1.0,
    ) -> None:
        self.spec = spec
        self.config = config or ManagerConfig()
        self.predictor = predictor or DepPredictor(
            estimator=with_burst(crit_nonscaling), name="DEP+BURST"
        )
        #: Candidate set points, ascending. The default — the machine's
        #: full ladder with the spec's maximum as the reference point —
        #: is the paper's configuration; a cluster manager narrows this
        #: to its domain's node-trimmed ladder.
        if candidates is None:
            self._candidates = tuple(spec.frequencies())
            self._f_max = spec.max_freq_ghz
        else:
            self._candidates = tuple(sorted(candidates))
            if not self._candidates:
                raise ConfigError("candidates must be non-empty")
            self._f_max = self._candidates[-1]
        #: Uncore-frequency scale applied to non-scaling time in every
        #: prediction (reference_uncore / domain_uncore); 1.0 — the
        #: default and the homogeneous machine — leaves every prediction
        #: on the paper's exact expression.
        if uncore_scale <= 0:
            raise ConfigError(f"uncore_scale must be positive ({uncore_scale})")
        self.uncore_scale = uncore_scale
        #: Evaluate the whole candidate V/f table per quantum in one
        #: sweep-kernel call instead of one ``predict_epochs`` per set
        #: point. Decisions are bit-identical either way (the kernels
        #: are exact); ``sweep=False`` keeps the per-frequency loop for
        #: benchmarking and differential testing.
        self.sweep = sweep
        if self.config.objective == "min-edp" and power_model is None:
            from repro.energy.power import PowerModel

            power_model = PowerModel(spec)
        self.power_model = power_model
        self.decisions: List[ManagerDecision] = []
        self._since_change = 10 ** 9  # allow an immediate first decision
        # Slack-banking state: cumulative measured time and its estimate
        # at the highest frequency.
        self._elapsed_ns = 0.0
        self._elapsed_at_max_ns = 0.0

    def step(
        self, record: IntervalRecord, epochs: Sequence[Epoch]
    ) -> Optional[float]:
        """One quantum decision: the next frequency, or None (keep current)."""
        self._since_change += 1
        if self._since_change < self.config.hold_off:
            return None
        if record.busy_core_ns < self.config.min_busy_ns:
            return None
        if not epochs:
            return None
        base = record.freq_ghz
        f_max = self._f_max
        predictions = self._sweep_candidates(epochs, base) if self.sweep else None
        if predictions is not None:
            predicted_at_max = predictions[f_max]
        else:
            predicted_at_max = self._predict_scalar(epochs, base, f_max)
        if predicted_at_max <= 0:
            return None
        bound = self._interval_bound(record, predicted_at_max)
        if self.config.objective == "min-edp":
            chosen, chosen_slowdown = self._choose_min_edp(
                record, epochs, base, predicted_at_max, bound, predictions
            )
        else:
            chosen, chosen_slowdown = self._choose_min_energy(
                epochs, base, predicted_at_max, bound, predictions
            )
        self.decisions.append(
            ManagerDecision(
                interval_index=record.index,
                base_freq_ghz=base,
                chosen_freq_ghz=chosen,
                predicted_slowdown=chosen_slowdown,
            )
        )
        if chosen != base:
            self._since_change = 0
            return chosen
        return None

    def _predict_scalar(self, epochs, base, freq):
        """One scalar prediction honouring the session's uncore scale."""
        if self.uncore_scale == 1.0:
            return self.predictor.predict_epochs(epochs, base, freq)
        return self.predictor.predict_epochs(
            epochs, base, freq, uncore_scale=self.uncore_scale
        )

    def _sweep_candidates(self, epochs, base):
        """All candidate predictions (plus the maximum frequency) from
        one sweep-kernel call over one epoch decomposition."""
        freqs = list(self._candidates)
        f_max = self._f_max
        if f_max not in freqs:
            freqs.append(f_max)
        if self.uncore_scale == 1.0:
            targets = freqs
        else:
            targets = [(freq, self.uncore_scale) for freq in freqs]
        arrays = EpochArrays.from_epochs(epochs)
        values = sweep_predict_epochs(self.predictor, arrays, base, targets)
        return dict(zip(freqs, values))

    def _choose_min_energy(
        self, epochs, base, predicted_at_max, bound, predictions=None
    ):
        """The paper's policy: lowest frequency within the slowdown bound."""
        f_max = self._f_max
        for candidate in self._candidates:  # ascending
            if predictions is not None:
                predicted = predictions[candidate]
            else:
                predicted = self._predict_scalar(epochs, base, candidate)
            slowdown = predicted / predicted_at_max - 1.0
            if slowdown <= bound:
                return candidate, slowdown
        return f_max, 0.0

    def _choose_min_edp(
        self, record, epochs, base, predicted_at_max, bound, predictions=None
    ):
        """Extension: minimize predicted energy x delay within the bound.

        Energy at a candidate frequency is estimated with the power model
        over the interval's measured counters re-timed to the predicted
        duration — the same approximation the interval accounting uses.
        """
        f_max = self._f_max
        counters = record.aggregate()
        best = (f_max, 0.0)
        best_edp = None
        for candidate in self._candidates:
            if predictions is not None:
                predicted = predictions[candidate]
            else:
                predicted = self._predict_scalar(epochs, base, candidate)
            slowdown = predicted / predicted_at_max - 1.0
            if slowdown > bound:
                continue
            energy = self.power_model.interval_energy_j(
                counters, predicted, candidate
            )
            edp = energy * predicted
            if best_edp is None or edp < best_edp:
                best_edp = edp
                best = (candidate, slowdown)
        return best

    def _interval_bound(
        self, record: IntervalRecord, predicted_at_max: float
    ) -> float:
        """Per-interval slowdown bound (threshold, or banked variant)."""
        threshold = self.config.tolerable_slowdown
        if not self.config.slack_banking:
            return threshold
        self._elapsed_ns += record.duration_ns
        self._elapsed_at_max_ns += predicted_at_max
        if self._elapsed_at_max_ns <= 0:
            return threshold
        achieved = self._elapsed_ns / self._elapsed_at_max_ns - 1.0
        # Spend the unspent budget (or repay an overdraft) on the next
        # quantum; never allow more than 2x the configured bound at once.
        banked = threshold + (threshold - achieved)
        return min(max(banked, 0.0), 2.0 * threshold)


class EnergyManager(EnergyManagerSession):
    """DVFS governor: minimum-energy frequency within a performance bound.

    Instances are callables matching the simulator's governor interface;
    pass one to :func:`repro.sim.run.simulate_managed`. All decision
    state and logic live in the :class:`EnergyManagerSession` base; this
    class only adds the trace coupling (slicing each interval's epochs
    out of the live trace).
    """

    def __call__(
        self, record: IntervalRecord, trace: SimulationTrace
    ) -> Optional[float]:
        """Governor hook: return the next quantum's frequency (or None)."""
        return self.step(record, interval_epochs(record, trace))


class ClusterManager:
    """Per-cluster energy management: one decision session per domain.

    Each cluster of a :class:`~repro.arch.clusters.ClusterTopology` gets
    its own :class:`EnergyManagerSession` configured with the cluster's
    *node-trimmed* candidate ladder (its tech node's Vth floor removes
    unreachable low set points) and its uncore scale (reference uncore
    over the cluster's uncore clock). Every quantum, each session sees
    the interval's epochs and chooses within its own domain.

    Instances are simulator governors. A single-domain topology — one
    cluster spanning the machine's full ladder at 22 nm ITRS and the
    reference uncore — delegates to a plain chip-wide session and
    returns scalar frequencies, reproducing the legacy
    :class:`EnergyManager` byte-for-byte (the pinned differential
    configuration). Heterogeneous topologies return per-core frequency
    dicts, driving the simulator's per-core DVFS path
    (``per_core_dvfs=True``).
    """

    def __init__(
        self,
        topology: "ClusterTopology",
        config: Optional[ManagerConfig] = None,
        predictor: Optional[DepPredictor] = None,
        sweep: bool = True,
    ) -> None:
        self.topology = topology
        self.spec = topology.spec
        self.config = config or ManagerConfig()
        self._legacy: Optional[EnergyManagerSession] = None
        self._sessions: Dict[str, EnergyManagerSession] = {}
        self._current: Dict[str, float] = {}
        if topology.is_single_domain and self._is_reference(
            topology.clusters[0]
        ):
            # The pinned legacy configuration: one session, default
            # candidates, scale 1.0 — the byte-identical twin.
            self._legacy = EnergyManagerSession(
                self.spec, self.config, predictor, sweep=sweep
            )
            return
        for cluster in topology.clusters:
            candidates = cluster.supported_frequencies()
            self._sessions[cluster.name] = EnergyManagerSession(
                self.spec,
                self.config,
                predictor,
                sweep=sweep,
                candidates=candidates,
                uncore_scale=cluster.uncore_scale(self.spec),
            )
            self._current[cluster.name] = max(candidates)

    def _is_reference(self, cluster) -> bool:
        """True when the cluster adds nothing over the legacy machine."""
        from repro.energy.vftable import get_tech_node

        node = get_tech_node(cluster.node_nm, cluster.node_scaling)
        return (
            node.vdd_scale == 1.0
            and cluster.uncore_freq_ghz == self.spec.uncore_freq_ghz
            and cluster.supported_frequencies() == self.spec.frequencies()
        )

    @property
    def decisions(self) -> List[ManagerDecision]:
        """All sessions' decision logs, interleaved by interval index."""
        if self._legacy is not None:
            return self._legacy.decisions
        merged: List[ManagerDecision] = []
        for name in sorted(self._sessions):
            merged.extend(self._sessions[name].decisions)
        merged.sort(key=lambda d: d.interval_index)
        return merged

    @property
    def cluster_decisions(self) -> Dict[str, List[ManagerDecision]]:
        """Decision log per cluster name."""
        if self._legacy is not None:
            return {self.topology.clusters[0].name: self._legacy.decisions}
        return {
            name: session.decisions
            for name, session in self._sessions.items()
        }

    def __call__(self, record: IntervalRecord, trace: SimulationTrace):
        """Governor hook: scalar frequency (single domain) or core dict."""
        epochs = interval_epochs(record, trace)
        if self._legacy is not None:
            return self._legacy.step(record, epochs)
        changes: Dict[int, float] = {}
        for cluster in self.topology.clusters:
            session = self._sessions[cluster.name]
            # The session predicts relative to the cluster's own current
            # set point, not the chip-wide interval frequency.
            base = self._current[cluster.name]
            view = (
                record
                if record.freq_ghz == base
                else replace(record, freq_ghz=base)
            )
            chosen = session.step(view, epochs)
            if chosen is not None and chosen != base:
                self._current[cluster.name] = chosen
                for core in cluster.cores:
                    changes[core] = chosen
        return changes or None
