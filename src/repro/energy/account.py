"""Energy accounting: integrate the power model over a simulation trace."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import TraceError
from repro.arch.specs import MachineSpec
from repro.energy.power import PowerModel
from repro.sim.trace import SimulationTrace


@dataclass
class EnergyReport:
    """Energy of one run, per interval and total."""

    total_j: float
    per_interval_j: List[float]
    total_ns: float

    @property
    def avg_power_w(self) -> float:
        """Mean chip+DRAM power over the run."""
        seconds = self.total_ns * 1e-9
        return self.total_j / seconds if seconds else 0.0


def compute_energy(
    trace: SimulationTrace,
    spec: MachineSpec,
    power_model: Optional[PowerModel] = None,
) -> EnergyReport:
    """Energy of a completed run from its interval records.

    Each interval carries the frequency it ran at and the counter deltas of
    every thread; the power model converts those into joules. Requires the
    trace to cover its whole duration with intervals (the simulator always
    closes a final partial interval).
    """
    model = power_model or PowerModel(spec)
    if not trace.intervals:
        raise TraceError("trace has no interval records; cannot account energy")
    per_interval: List[float] = []
    covered = 0.0
    for record in trace.intervals:
        counters = record.aggregate()
        energy = model.interval_energy_j(
            counters, record.duration_ns, record.freq_ghz
        )
        per_interval.append(energy)
        covered += record.duration_ns
    if covered < trace.total_ns - 1.0:
        raise TraceError(
            f"intervals cover {covered} ns of a {trace.total_ns} ns run"
        )
    return EnergyReport(
        total_j=sum(per_interval),
        per_interval_j=per_interval,
        total_ns=trace.total_ns,
    )
