"""Energy substrate: V/f table, power model, accounting, energy manager.

The paper's case study (Section VI) wraps DEP+BURST in an energy manager
that picks, every 5 ms quantum, the lowest frequency whose predicted
slowdown against the highest frequency stays within a user-specified
threshold. This package provides:

* :mod:`~repro.energy.vftable` — an i7-4770K-like voltage/frequency curve
  at 125 MHz granularity;
* :mod:`~repro.energy.power` — a McPAT-like chip power model
  (dynamic ``C·V²·f·activity``, voltage-dependent leakage, uncore/DRAM);
* :mod:`~repro.energy.account` — integrates power over a simulation's
  interval records into energy;
* :mod:`~repro.energy.manager` — the DVFS governor of Figure 5;
* :mod:`~repro.energy.static_oracle` — the static-optimal oracle of
  Figure 7.
"""

from repro.energy.account import EnergyReport, compute_energy
from repro.energy.manager import ClusterManager, EnergyManager, ManagerConfig
from repro.energy.power import PowerModel, PowerModelConfig, node_power_config
from repro.energy.static_oracle import StaticOracleResult, static_optimal
from repro.energy.vftable import (
    NodeVfTable,
    TECH_NODES,
    TechNode,
    VfTable,
    get_tech_node,
)

__all__ = [
    "ClusterManager",
    "EnergyManager",
    "EnergyReport",
    "ManagerConfig",
    "NodeVfTable",
    "PowerModel",
    "PowerModelConfig",
    "StaticOracleResult",
    "TECH_NODES",
    "TechNode",
    "VfTable",
    "compute_energy",
    "get_tech_node",
    "node_power_config",
    "static_optimal",
]
