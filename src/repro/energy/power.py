"""McPAT-like chip power model.

The paper models power with McPAT at 22 nm, reporting both static and
dynamic power (Section IV). We reproduce the structure McPAT's output
feeds into the energy manager:

* **core dynamic power** — ``C_eff · V² · f`` per core, weighted by an
  activity factor derived from the interval's performance counters
  (a stalled core clocks much less switching capacitance than a committing
  one);
* **static (leakage) power** — grows with supply voltage, always on;
* **uncore power** — L3 + interconnect at fixed clock, modeled constant;
* **DRAM power** — a constant background term plus an energy cost per
  DRAM access, estimated from the counters.

Default coefficients give a 4-core chip ≈ 65 W fully busy at 4 GHz and
≈ 10 W at 1 GHz mostly idle — Haswell-desktop-like numbers; the energy
*trends* (what the evaluation reproduces) depend only on the V²f shape
and the static/uncore floor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.arch.counters import CounterSet
from repro.arch.specs import MachineSpec
from repro.energy.vftable import TechNode, VfTable


@dataclass(frozen=True)
class PowerModelConfig:
    """Coefficients of the chip power model."""

    #: Effective switching capacitance per core: W per (V² · GHz) at
    #: activity 1.0.
    core_ceff_w_per_v2_ghz: float = 3.3
    #: Leakage at nominal voltage (W per core at 1.0 V), linear in V.
    leakage_w_per_core_per_v: float = 1.9
    #: Constant uncore (L3, ring, memory controller) power in W.
    uncore_w: float = 3.0
    #: DRAM background power in W.
    dram_background_w: float = 2.0
    #: Energy per DRAM line access (nJ) — reads from miss chains, writes
    #: from store drains.
    dram_nj_per_access: float = 18.0
    #: Floor activity of a clocked but stalled core (clock tree, windows).
    idle_activity: float = 0.30
    #: Mean latency used to convert accumulated chain latency to access
    #: counts (ns per access).
    mean_access_ns: float = 60.0
    #: Stores per drained DRAM line (coalescing factor).
    stores_per_line: float = 8.0

    def __post_init__(self) -> None:
        for name in (
            "core_ceff_w_per_v2_ghz",
            "leakage_w_per_core_per_v",
            "uncore_w",
            "dram_background_w",
            "dram_nj_per_access",
            "mean_access_ns",
            "stores_per_line",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 <= self.idle_activity <= 1.0:
            raise ConfigError("idle_activity must be in [0, 1]")


def node_power_config(
    node: TechNode, base: PowerModelConfig = PowerModelConfig()
) -> PowerModelConfig:
    """Power coefficients scaled to a technology node.

    The model computes ``V²`` explicitly from the node's own voltage
    table, so the Lumos-style full-chip power factor is split: dynamic
    switching capacitance takes ``power_scale / vdd_scale²`` (what is
    left of the node's power scaling once its voltage drop is accounted
    for), leakage-per-volt takes ``power_scale / vdd_scale``, and the
    fixed uncore term takes the full factor. DRAM terms are off-chip and
    do not scale with the logic node.
    """
    dynamic = node.power_scale / (node.vdd_scale * node.vdd_scale)
    return replace(
        base,
        core_ceff_w_per_v2_ghz=base.core_ceff_w_per_v2_ghz * dynamic,
        leakage_w_per_core_per_v=(
            base.leakage_w_per_core_per_v * node.power_scale / node.vdd_scale
        ),
        uncore_w=base.uncore_w * node.power_scale,
    )


class PowerModel:
    """Computes chip power/energy for counter-characterized intervals."""

    def __init__(
        self,
        spec: MachineSpec,
        config: PowerModelConfig = PowerModelConfig(),
        vf_table: VfTable = None,
    ) -> None:
        self.spec = spec
        self.config = config
        self.vf = vf_table or VfTable(spec)

    # ------------------------------------------------------------------
    # Component powers
    # ------------------------------------------------------------------

    def static_power_w(self, freq_ghz: float) -> float:
        """Chip leakage power at the set point's voltage."""
        voltage = self.vf.voltage(freq_ghz)
        return self.config.leakage_w_per_core_per_v * voltage * self.spec.n_cores

    def core_dynamic_power_w(self, freq_ghz: float, activity: float) -> float:
        """All-core switching power at ``activity`` (0..1)."""
        voltage = self.vf.voltage(freq_ghz)
        return (
            self.config.core_ceff_w_per_v2_ghz
            * voltage
            * voltage
            * freq_ghz
            * activity
            * self.spec.n_cores
        )

    def max_power_w(self, freq_ghz: float) -> float:
        """Fully-active chip power (for reporting)."""
        return (
            self.core_dynamic_power_w(freq_ghz, 1.0)
            + self.static_power_w(freq_ghz)
            + self.config.uncore_w
            + self.config.dram_background_w
        )

    # ------------------------------------------------------------------
    # Interval energy
    # ------------------------------------------------------------------

    def interval_activity(
        self, counters: CounterSet, duration_ns: float, freq_ghz: float
    ) -> float:
        """Average per-core activity factor over an interval.

        A core contributes the idle floor while clocked, plus switching
        proportional to its commit rate (instructions per maximum-issue
        slot). Memory-stalled time therefore draws much less dynamic power
        than committing time — this is what makes lowering the frequency
        cheap for memory-bound phases.
        """
        if duration_ns <= 0:
            return 0.0
        capacity = self.spec.n_cores * duration_ns
        busy_fraction = min(counters.active_ns / capacity, 1.0)
        issue_slots = duration_ns * freq_ghz * self.spec.core.width
        commit_fraction = min(counters.insns / (issue_slots * self.spec.n_cores), 1.0)
        activity = (
            self.config.idle_activity * busy_fraction
            + (1.0 - self.config.idle_activity) * commit_fraction
        )
        return min(activity, 1.0)

    def dram_accesses(self, counters: CounterSet) -> float:
        """Estimated DRAM line accesses behind an interval's counters."""
        reads = counters.crit_ns / self.config.mean_access_ns
        writes = counters.stores / self.config.stores_per_line
        return reads + writes

    def interval_energy_j(
        self, counters: CounterSet, duration_ns: float, freq_ghz: float
    ) -> float:
        """Total chip + DRAM energy of one interval, in joules."""
        if duration_ns < 0:
            raise ConfigError(f"negative interval duration {duration_ns}")
        seconds = duration_ns * 1e-9
        activity = self.interval_activity(counters, duration_ns, freq_ghz)
        power = (
            self.core_dynamic_power_w(freq_ghz, activity)
            + self.static_power_w(freq_ghz)
            + self.config.uncore_w
            + self.config.dram_background_w
        )
        energy = power * seconds
        energy += self.dram_accesses(counters) * self.config.dram_nj_per_access * 1e-9
        return energy
