"""The static-optimal oracle (paper Section VI.B, Figure 7).

Static-optimal is obtained by running the application once per fixed
frequency and picking, in hindsight, the frequency that minimizes energy
while keeping the whole-run slowdown (vs. the highest frequency) within
the threshold. Because it uses the very runs it is judged on, the paper
treats it as an oracle; a dynamic manager can only beat it by exploiting
*phase behaviour* — running memory-bound stretches slower and compute
stretches faster than any single static point could.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class StaticOracleResult:
    """The oracle's choice for one application and threshold."""

    freq_ghz: float
    energy_j: float
    total_ns: float
    #: Whole-run slowdown vs. the highest frequency.
    slowdown: float
    #: Energy saving vs. running at the highest frequency.
    energy_saving: float


def static_optimal(
    runs: Mapping[float, Tuple[float, float]],
    tolerable_slowdown: float,
    max_freq_ghz: float,
) -> StaticOracleResult:
    """Pick the minimum-energy fixed frequency within the slowdown bound.

    ``runs`` maps frequency (GHz) to ``(total_ns, energy_j)`` from
    ground-truth fixed-frequency simulations; it must include the highest
    frequency, which anchors the slowdown and saving baselines.
    """
    if max_freq_ghz not in runs:
        raise ConfigError(
            f"runs must include the baseline frequency {max_freq_ghz} GHz"
        )
    if tolerable_slowdown < 0:
        raise ConfigError("tolerable_slowdown must be >= 0")
    base_ns, base_j = runs[max_freq_ghz]
    best: StaticOracleResult = StaticOracleResult(
        freq_ghz=max_freq_ghz,
        energy_j=base_j,
        total_ns=base_ns,
        slowdown=0.0,
        energy_saving=0.0,
    )
    for freq_ghz, (total_ns, energy_j) in sorted(runs.items()):
        slowdown = total_ns / base_ns - 1.0
        if slowdown > tolerable_slowdown:
            continue
        if energy_j < best.energy_j:
            best = StaticOracleResult(
                freq_ghz=freq_ghz,
                energy_j=energy_j,
                total_ns=total_ns,
                slowdown=slowdown,
                energy_saving=1.0 - energy_j / base_j,
            )
    return best
