"""The static-optimal oracle (paper Section VI.B, Figure 7).

Static-optimal is obtained by running the application once per fixed
frequency and picking, in hindsight, the frequency that minimizes energy
while keeping the whole-run slowdown (vs. the highest frequency) within
the threshold. Because it uses the very runs it is judged on, the paper
treats it as an oracle; a dynamic manager can only beat it by exploiting
*phase behaviour* — running memory-bound stretches slower and compute
stretches faster than any single static point could.

:func:`predicted_static_optimal` is the simulate-once variant: instead of
one ground-truth run per set point, it sweeps the whole V/f table from a
single base-frequency trace in one kernel call
(:class:`~repro.core.sweep.TraceSweep`) and prices each predicted
duration with the power model. It answers the oracle's question at the
cost of one simulation plus one decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class StaticOracleResult:
    """The oracle's choice for one application and threshold."""

    freq_ghz: float
    energy_j: float
    total_ns: float
    #: Whole-run slowdown vs. the highest frequency.
    slowdown: float
    #: Energy saving vs. running at the highest frequency.
    energy_saving: float


def static_optimal(
    runs: Mapping[float, Tuple[float, float]],
    tolerable_slowdown: float,
    max_freq_ghz: float,
) -> StaticOracleResult:
    """Pick the minimum-energy fixed frequency within the slowdown bound.

    ``runs`` maps frequency (GHz) to ``(total_ns, energy_j)`` from
    ground-truth fixed-frequency simulations; it must include the highest
    frequency, which anchors the slowdown and saving baselines.
    """
    if max_freq_ghz not in runs:
        raise ConfigError(
            f"runs must include the baseline frequency {max_freq_ghz} GHz"
        )
    if tolerable_slowdown < 0:
        raise ConfigError("tolerable_slowdown must be >= 0")
    base_ns, base_j = runs[max_freq_ghz]
    best: StaticOracleResult = StaticOracleResult(
        freq_ghz=max_freq_ghz,
        energy_j=base_j,
        total_ns=base_ns,
        slowdown=0.0,
        energy_saving=0.0,
    )
    for freq_ghz, (total_ns, energy_j) in sorted(runs.items()):
        slowdown = total_ns / base_ns - 1.0
        if slowdown > tolerable_slowdown:
            continue
        if energy_j < best.energy_j:
            best = StaticOracleResult(
                freq_ghz=freq_ghz,
                energy_j=energy_j,
                total_ns=total_ns,
                slowdown=slowdown,
                energy_saving=1.0 - energy_j / base_j,
            )
    return best


def predicted_static_optimal(
    trace,
    power_model,
    frequencies: Sequence[float],
    tolerable_slowdown: float,
    max_freq_ghz: float,
    predictor=None,
    base_freq_ghz: Optional[float] = None,
) -> StaticOracleResult:
    """The oracle's answer from one base-frequency trace, no re-runs.

    Predicts the whole-run duration at every candidate frequency (plus
    ``max_freq_ghz``) in a single sweep-kernel call over ``trace``'s
    decomposition, prices each with ``power_model`` over the trace's
    aggregate counters, and applies :func:`static_optimal`'s selection
    rule to the predicted runs. The default predictor is the paper's
    DEP+BURST.
    """
    from repro.core.predictors import make_predictor
    from repro.core.sweep import TraceSweep

    if predictor is None:
        predictor = make_predictor("DEP+BURST")
    targets = list(frequencies)
    if max_freq_ghz not in targets:
        targets.append(max_freq_ghz)
    sweep = TraceSweep(trace)
    predictions = sweep.predict(predictor, targets, base_freq_ghz=base_freq_ghz)
    # Aggregate chip-wide counters once; the power model re-times them to
    # each predicted duration (the same approximation the manager's
    # min-EDP objective uses per quantum).
    aggregate = None
    for counters in trace.final_counters().values():
        if aggregate is None:
            aggregate = counters.copy()
        else:
            aggregate.add(counters)
    if aggregate is None:
        raise ConfigError("trace has no counter snapshots to price")
    runs = {
        freq: (
            predicted_ns,
            power_model.interval_energy_j(aggregate, predicted_ns, freq),
        )
        for freq, predicted_ns in zip(targets, predictions)
    }
    return static_optimal(runs, tolerable_slowdown, max_freq_ghz)
