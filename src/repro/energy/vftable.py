"""Voltage/frequency operating points, parameterized by technology node.

The paper uses the voltage settings of Intel's Haswell i7-4770K with a
125 MHz frequency step (Section IV). Haswell's published operating range
runs from roughly 0.70 V near 800 MHz to about 1.10 V at 3.9-4 GHz; we
interpolate linearly between 0.725 V @ 1 GHz and 1.10 V @ 4 GHz, which
matches the table's published subset closely enough for energy-trend
reproduction. :class:`VfTable` is that default table, unchanged.

:class:`NodeVfTable` generalizes it across technology nodes. The node
data follow the Lumos exemplar (SNIPPETS.md 1: ITRS projections vs.
conservative scaling of supply voltage, frequency and power per node,
plus per-node threshold voltages): the Haswell-like voltage endpoints
are scaled by the node's Vdd factor, and a Vth-derived floor cuts the
bottom off the DVFS range — a supply must keep ``VTH_OVERDRIVE_V`` of
overdrive above threshold to close timing at GHz-class set points, so
aggressively Vdd-scaled (ITRS) deep nodes lose their lowest frequencies
while conservative scaling keeps the full ladder. This is the "dim
silicon" effect the heterogeneous experiments sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.common.errors import ConfigError
from repro.arch.specs import MachineSpec


class VfTable:
    """Maps every DVFS set point to its supply voltage."""

    def __init__(
        self,
        spec: MachineSpec,
        v_at_min: float = 0.725,
        v_at_max: float = 1.10,
    ) -> None:
        if v_at_min <= 0 or v_at_max < v_at_min:
            raise ConfigError(
                f"invalid voltage range [{v_at_min}, {v_at_max}]"
            )
        self.spec = spec
        self.v_at_min = v_at_min
        self.v_at_max = v_at_max
        self._table: Dict[float, float] = {}
        f_lo, f_hi = spec.min_freq_ghz, spec.max_freq_ghz
        span = f_hi - f_lo
        for freq in spec.frequencies():
            alpha = (freq - f_lo) / span if span else 0.0
            self._table[freq] = v_at_min + alpha * (v_at_max - v_at_min)

    def voltage(self, freq_ghz: float) -> float:
        """Supply voltage (V) at set point ``freq_ghz``."""
        voltage = self._table.get(round(freq_ghz, 6))
        if voltage is None:
            # Tolerate float formatting noise only — anything further from
            # a set point is a caller bug.
            for point, volt in self._table.items():
                if abs(point - freq_ghz) < 1e-6:
                    return volt
            raise ConfigError(f"{freq_ghz} GHz is not a DVFS set point")
        return voltage

    def rows(self) -> Tuple[Tuple[float, float], ...]:
        """(frequency GHz, voltage V) pairs, ascending frequency."""
        return tuple(sorted(self._table.items()))


# ----------------------------------------------------------------------
# Technology nodes (Lumos-style ITRS / conservative scaling)
# ----------------------------------------------------------------------

#: Voltage endpoints of the unit-scaling baseline node (45 nm in the
#: Lumos normalization) — the legacy :class:`VfTable` curve. Every other
#: node scales these by its Vdd factor.
BASE_V_AT_MIN = 0.725
BASE_V_AT_MAX = 1.10
#: Overdrive a supply needs above the threshold voltage to sustain
#: GHz-class switching; set points whose scaled voltage would dip below
#: ``vth + VTH_OVERDRIVE_V`` are not supported at that node.
VTH_OVERDRIVE_V = 0.35


@dataclass(frozen=True)
class TechNode:
    """One technology node under one scaling assumption."""

    node_nm: int
    #: ``"itrs"`` (aggressive projections) or ``"cons"`` (conservative).
    scaling: str
    #: Supply-voltage factor relative to the 45 nm baseline.
    vdd_scale: float
    #: Achievable-frequency factor relative to the 45 nm baseline.
    freq_scale: float
    #: Full-chip power factor relative to the 45 nm baseline.
    power_scale: float
    #: Threshold voltage at this node, in volts.
    vth_v: float

    def __post_init__(self) -> None:
        if self.scaling not in ("itrs", "cons"):
            raise ConfigError(
                f"scaling must be 'itrs' or 'cons', got {self.scaling!r}"
            )
        for name in ("vdd_scale", "freq_scale", "power_scale", "vth_v"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def key(self) -> Tuple[int, str]:
        """Registry key of this node."""
        return (self.node_nm, self.scaling)

    @property
    def v_floor(self) -> float:
        """Vth-derived minimum usable supply voltage."""
        return self.vth_v + VTH_OVERDRIVE_V


#: (node_nm, scaling) -> TechNode, values from the Lumos exemplar's
#: ITRS/conservative projection tables (45 nm is the unit baseline).
TECH_NODES: Dict[Tuple[int, str], TechNode] = {
    node.key: node
    for node in (
        TechNode(45, "itrs", 1.00, 1.00, 1.00, 0.3201),
        TechNode(32, "itrs", 0.93, 1.09, 0.66, 0.2970),
        TechNode(22, "itrs", 0.84, 2.38, 0.54, 0.2673),
        TechNode(16, "itrs", 0.75, 3.21, 0.38, 0.2409),
        TechNode(45, "cons", 1.00, 1.00, 1.00, 0.3201),
        TechNode(32, "cons", 0.93, 1.10, 0.71, 0.2970),
        TechNode(22, "cons", 0.88, 1.19, 0.52, 0.2673),
        TechNode(16, "cons", 0.86, 1.25, 0.39, 0.2409),
    )
}

#: Node sizes available under both scaling assumptions.
NODE_SIZES: Tuple[int, ...] = (45, 32, 22, 16)


def get_tech_node(node_nm: int, scaling: str = "itrs") -> TechNode:
    """Registry lookup (:class:`ConfigError` with choices if unknown)."""
    node = TECH_NODES.get((node_nm, scaling))
    if node is None:
        raise ConfigError(
            f"unknown tech node ({node_nm} nm, {scaling!r}); expected "
            f"one of {sorted(TECH_NODES)}"
        )
    return node


def _grid(min_freq_ghz: float, max_freq_ghz: float, step_ghz: float):
    """The spec's integer-step frequency ladder for an arbitrary range."""
    if min_freq_ghz <= 0 or step_ghz <= 0 or max_freq_ghz < min_freq_ghz:
        raise ConfigError(
            f"invalid frequency range [{min_freq_ghz}, {max_freq_ghz}] "
            f"step {step_ghz}"
        )
    steps = int(round((max_freq_ghz - min_freq_ghz) / step_ghz))
    return tuple(
        round(min_freq_ghz + i * step_ghz, 6) for i in range(steps + 1)
    )


class NodeVfTable:
    """A :class:`VfTable` scaled to a technology node, with a Vth floor.

    Voltages are the reference endpoints scaled by the node's Vdd factor,
    interpolated linearly across the machine's (or an explicit) frequency
    ladder. Set points whose voltage falls below the node's Vth-derived
    floor are *unsupported*: they are excluded from :meth:`set_points`
    and :meth:`voltage` rejects them, which is how a node's DVFS range
    shrinks from the bottom (``f_min_ghz``) as Vdd scaling closes in on
    Vth.
    """

    def __init__(
        self,
        spec: MachineSpec = None,
        node_nm: int = 45,
        scaling: str = "itrs",
        *,
        min_freq_ghz: float = None,
        max_freq_ghz: float = None,
        freq_step_ghz: float = None,
    ) -> None:
        if spec is None and None in (min_freq_ghz, max_freq_ghz, freq_step_ghz):
            raise ConfigError(
                "NodeVfTable needs a MachineSpec or an explicit frequency range"
            )
        self.node = get_tech_node(node_nm, scaling)
        self.min_freq_ghz = (
            spec.min_freq_ghz if min_freq_ghz is None else min_freq_ghz
        )
        self.max_freq_ghz = (
            spec.max_freq_ghz if max_freq_ghz is None else max_freq_ghz
        )
        self.freq_step_ghz = (
            spec.freq_step_ghz if freq_step_ghz is None else freq_step_ghz
        )
        self.v_at_min = BASE_V_AT_MIN * self.node.vdd_scale
        self.v_at_max = BASE_V_AT_MAX * self.node.vdd_scale
        if self.v_at_max < self.node.v_floor:
            raise ConfigError(
                f"{self.node.node_nm} nm ({self.node.scaling}) cannot "
                f"sustain any set point: peak voltage {self.v_at_max:.3f} V "
                f"under the Vth floor {self.node.v_floor:.3f} V"
            )
        grid = _grid(self.min_freq_ghz, self.max_freq_ghz, self.freq_step_ghz)
        span = self.max_freq_ghz - self.min_freq_ghz
        self._table: Dict[float, float] = {}
        for freq in grid:
            alpha = (freq - self.min_freq_ghz) / span if span else 0.0
            voltage = self.v_at_min + alpha * (self.v_at_max - self.v_at_min)
            if voltage >= self.node.v_floor - 1e-9:
                self._table[freq] = voltage
        #: Lowest supported set point: the Vth-derived DVFS floor.
        self.f_min_ghz = min(self._table)
        #: Highest supported set point (always the range's top).
        self.f_max_ghz = max(self._table)

    def voltage(self, freq_ghz: float) -> float:
        """Supply voltage (V) at the *supported* set point ``freq_ghz``."""
        voltage = self._table.get(round(freq_ghz, 6))
        if voltage is None:
            for point, volt in self._table.items():
                if abs(point - freq_ghz) < 1e-6:
                    return volt
            raise ConfigError(
                f"{freq_ghz} GHz is not a supported set point at "
                f"{self.node.node_nm} nm ({self.node.scaling}); the node's "
                f"range is [{self.f_min_ghz}, {self.f_max_ghz}] GHz"
            )
        return voltage

    def set_points(self) -> Tuple[float, ...]:
        """Supported frequencies, ascending (the node-trimmed ladder)."""
        return tuple(sorted(self._table))

    def rows(self) -> Tuple[Tuple[float, float], ...]:
        """(frequency GHz, voltage V) pairs, ascending frequency."""
        return tuple(sorted(self._table.items()))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible encoding (exact round-trip via from_dict)."""
        return {
            "node_nm": self.node.node_nm,
            "scaling": self.node.scaling,
            "min_freq_ghz": self.min_freq_ghz,
            "max_freq_ghz": self.max_freq_ghz,
            "freq_step_ghz": self.freq_step_ghz,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "NodeVfTable":
        """Rebuild a table from :meth:`to_dict` output."""
        try:
            return cls(
                node_nm=int(payload["node_nm"]),
                scaling=payload["scaling"],
                min_freq_ghz=float(payload["min_freq_ghz"]),
                max_freq_ghz=float(payload["max_freq_ghz"]),
                freq_step_ghz=float(payload["freq_step_ghz"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed NodeVfTable payload: {exc}") from exc
