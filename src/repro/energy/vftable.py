"""Voltage/frequency operating points (i7-4770K-like, 22 nm).

The paper uses the voltage settings of Intel's Haswell i7-4770K with a
125 MHz frequency step (Section IV). Haswell's published operating range
runs from roughly 0.70 V near 800 MHz to about 1.10 V at 3.9-4 GHz; we
interpolate linearly between 0.725 V @ 1 GHz and 1.10 V @ 4 GHz, which
matches the table's published subset closely enough for energy-trend
reproduction.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import ConfigError
from repro.arch.specs import MachineSpec


class VfTable:
    """Maps every DVFS set point to its supply voltage."""

    def __init__(
        self,
        spec: MachineSpec,
        v_at_min: float = 0.725,
        v_at_max: float = 1.10,
    ) -> None:
        if v_at_min <= 0 or v_at_max < v_at_min:
            raise ConfigError(
                f"invalid voltage range [{v_at_min}, {v_at_max}]"
            )
        self.spec = spec
        self.v_at_min = v_at_min
        self.v_at_max = v_at_max
        self._table: Dict[float, float] = {}
        f_lo, f_hi = spec.min_freq_ghz, spec.max_freq_ghz
        span = f_hi - f_lo
        for freq in spec.frequencies():
            alpha = (freq - f_lo) / span if span else 0.0
            self._table[freq] = v_at_min + alpha * (v_at_max - v_at_min)

    def voltage(self, freq_ghz: float) -> float:
        """Supply voltage (V) at set point ``freq_ghz``."""
        voltage = self._table.get(round(freq_ghz, 6))
        if voltage is None:
            # Tolerate float formatting noise only — anything further from
            # a set point is a caller bug.
            for point, volt in self._table.items():
                if abs(point - freq_ghz) < 1e-6:
                    return volt
            raise ConfigError(f"{freq_ghz} GHz is not a DVFS set point")
        return voltage

    def rows(self) -> Tuple[Tuple[float, float], ...]:
        """(frequency GHz, voltage V) pairs, ascending frequency."""
        return tuple(sorted(self._table.items()))
