"""Synchronous client for the prediction service.

The experiment drivers, the replay-parity harness and the load generator
are all plain blocking code, so the client speaks the NDJSON protocol
over a blocking socket (unix or TCP). One request, one reply — the
server's pipelining exists for concurrent *connections*; a single client
that wants pipelining opens several.

:func:`replay_decisions` is the parity harness: it walks a managed
simulation trace interval by interval, steps a server-side governor
session with exactly the payloads the in-process manager saw, and
returns the decision sequence the server produced.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ReproError
from repro.core.epochs import Epoch
from repro.energy.manager import ManagerConfig, ManagerDecision, interval_epochs
from repro.serve import protocol
from repro.sim.intervals import IntervalRecord
from repro.sim.trace import SimulationTrace


class ServeRequestError(ReproError):
    """The server answered with a structured error reply."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeProtocolViolation(ReproError):
    """The server's byte stream violated the protocol (or died mid-reply)."""


class ServeClient:
    """Blocking NDJSON client; use as a context manager or call close()."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 30.0,
    ) -> "ServeClient":
        """Connect over a unix socket (preferred) or TCP."""
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        elif host is not None and port is not None:
            sock = socket.create_connection((host, port), timeout=timeout)
        else:
            raise ValueError("need socket_path or host+port")
        return cls(sock)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Raw request/reply
    # ------------------------------------------------------------------

    def request(self, kind: str, **payload: Any) -> Dict[str, Any]:
        """Send one request; return the ``result`` object of the reply.

        Raises :class:`ServeRequestError` for error replies and
        :class:`ServeProtocolViolation` if the stream breaks.
        """
        self._next_id += 1
        frame = {
            "v": protocol.PROTOCOL_VERSION,
            "id": self._next_id,
            "kind": kind,
        }
        frame.update(payload)
        self.send_raw(protocol.encode_frame(frame))
        reply = self.read_reply()
        if reply.get("id") != self._next_id:
            raise ServeProtocolViolation(
                f"reply id {reply.get('id')!r} does not match request "
                f"id {self._next_id}"
            )
        return self._unwrap(reply)

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (exposed for fault-injection tests)."""
        self._file.write(data)
        self._file.flush()

    def read_reply(self) -> Dict[str, Any]:
        """Read and decode one reply frame."""
        line = self._file.readline()
        if not line:
            raise ServeProtocolViolation("connection closed by server")
        try:
            return protocol.decode_frame(line)
        except protocol.ProtocolError as exc:
            raise ServeProtocolViolation(str(exc)) from exc

    @staticmethod
    def _unwrap(reply: Dict[str, Any]) -> Dict[str, Any]:
        if reply.get("ok"):
            result = reply.get("result")
            return result if isinstance(result, dict) else {}
        error = reply.get("error") or {}
        raise ServeRequestError(
            error.get("code", "internal"), error.get("message", "unknown error")
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The server's liveness/identity report."""
        return self.request("health")

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot."""
        return self.request("stats")

    def predict(
        self,
        epochs: Sequence[Epoch],
        base_freq_ghz: float,
        predictor: str = "DEP+BURST",
        target_freqs_ghz: Optional[Sequence[float]] = None,
        across_epoch_ctp: bool = True,
    ) -> Dict[str, Any]:
        """Predict the epoch window's duration at each target frequency."""
        payload: Dict[str, Any] = {
            "predictor": predictor,
            "across_epoch_ctp": across_epoch_ctp,
            "base_freq_ghz": base_freq_ghz,
            "epochs": [protocol.epoch_to_wire(epoch) for epoch in epochs],
        }
        if target_freqs_ghz is not None:
            payload["target_freqs_ghz"] = list(target_freqs_ghz)
        return self.request("predict", **payload)

    def open_session(
        self,
        config: Optional[ManagerConfig] = None,
        predictor: str = "DEP+BURST",
        across_epoch_ctp: bool = True,
    ) -> "GovernSession":
        """Open a server-side governor session."""
        wire_config: Dict[str, Any] = {
            "predictor": predictor,
            "across_epoch_ctp": across_epoch_ctp,
        }
        if config is not None:
            wire_config.update(
                tolerable_slowdown=config.tolerable_slowdown,
                hold_off=config.hold_off,
                min_busy_ns=config.min_busy_ns,
                slack_banking=config.slack_banking,
                objective=config.objective,
            )
        result = self.request("govern", op="open", config=wire_config)
        return GovernSession(self, result["session"])


class GovernSession:
    """Client handle of one server-side governor session.

    Mirrors :meth:`repro.energy.manager.EnergyManagerSession.step` so the
    in-process governor and the remote one are drop-in replacements for
    each other in replay code.
    """

    def __init__(self, client: ServeClient, session_id: str) -> None:
        self.client = client
        self.session_id = session_id
        self.decisions: List[ManagerDecision] = []

    def step(
        self, record: IntervalRecord, epochs: Sequence[Epoch]
    ) -> Optional[float]:
        """Step one quantum; returns the frequency to switch to (or None)."""
        result = self.client.request(
            "govern",
            op="step",
            session=self.session_id,
            record=protocol.record_to_wire(record),
            epochs=[protocol.epoch_to_wire(epoch) for epoch in epochs],
        )
        decision = result.get("decision")
        if decision is not None:
            self.decisions.append(
                ManagerDecision(
                    interval_index=decision["interval_index"],
                    base_freq_ghz=decision["base_freq_ghz"],
                    chosen_freq_ghz=decision["chosen_freq_ghz"],
                    predicted_slowdown=decision["predicted_slowdown"],
                )
            )
        return result.get("freq_ghz")

    def close(self) -> List[ManagerDecision]:
        """Close the session; return the server's full decision log."""
        result = self.client.request(
            "govern", op="close", session=self.session_id
        )
        return [
            ManagerDecision(
                interval_index=d["interval_index"],
                base_freq_ghz=d["base_freq_ghz"],
                chosen_freq_ghz=d["chosen_freq_ghz"],
                predicted_slowdown=d["predicted_slowdown"],
            )
            for d in result.get("decisions", [])
        ]


def replay_decisions(
    client: ServeClient,
    trace: SimulationTrace,
    config: ManagerConfig,
    predictor: str = "DEP+BURST",
) -> List[ManagerDecision]:
    """Replay a managed trace through a server session; return its decisions.

    Feeds the session exactly what the in-process manager consumed: each
    interval record plus the epoch slice
    :func:`repro.energy.manager.interval_epochs` extracts for it. The
    final record is skipped — the simulator closes it at teardown, after
    the last quantum boundary, so the live governor never saw it. The
    returned sequence must therefore be byte-identical to the decision
    log of the :class:`~repro.energy.manager.EnergyManager` that governed
    the original run.
    """
    session = client.open_session(config=config, predictor=predictor)
    for record in trace.intervals[:-1]:
        session.step(record, interval_epochs(record, trace))
    return session.close()
