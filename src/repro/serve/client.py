"""Synchronous client for the prediction service.

The experiment drivers, the replay-parity harness and the load generator
are all plain blocking code, so the client speaks the NDJSON protocol
over a blocking socket (unix or TCP). One request, one reply — the
server's pipelining exists for concurrent *connections*; a single client
that wants pipelining opens several.

:func:`replay_decisions` is the parity harness: it walks a managed
simulation trace interval by interval, steps a server-side governor
session with exactly the payloads the in-process manager saw, and
returns the decision sequence the server produced.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError, ReproError
from repro.core.epochs import Epoch
from repro.energy.manager import ManagerConfig, ManagerDecision, interval_epochs
from repro.serve import protocol
from repro.serve.sharding import shard_for_key
from repro.sim.intervals import IntervalRecord
from repro.sim.trace import SimulationTrace


class ServeRequestError(ReproError):
    """The server answered with a structured error reply."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeProtocolViolation(ReproError):
    """The server's byte stream violated the protocol (or died mid-reply)."""


#: Request kinds safe to resend after a broken connection. ``govern`` is
#: excluded: resending a ``step`` could double-advance a session whose
#: first copy was applied before the reply was lost.
IDEMPOTENT_KINDS = frozenset({"predict", "health", "stats"})


@dataclass(frozen=True)
class ReconnectPolicy:
    """Bounded exponential backoff with jitter for client reconnects.

    Attempt ``k`` (0-based) sleeps ``base_delay_s * 2**k`` capped at
    ``max_delay_s``, then multiplied by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` so a fleet of clients whose server
    restarted does not reconnect in lockstep.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigError(
                "need 0 <= base_delay_s <= max_delay_s"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int, uniform: Callable[[], float] = random.random) -> float:
        """The sleep before reconnect attempt ``attempt`` (0-based)."""
        delay = min(self.base_delay_s * (2.0 ** attempt), self.max_delay_s)
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * uniform())


class ServeClient:
    """Blocking NDJSON client; use as a context manager or call close().

    With a :class:`ReconnectPolicy`, connects retry with backoff, and a
    connection that breaks mid-request is transparently re-established —
    but the failed request is resent only if its kind is idempotent
    (:data:`IDEMPOTENT_KINDS`); a broken ``govern`` request always
    raises, because the server may or may not have applied it.
    """

    def __init__(
        self,
        sock: socket.socket,
        reconnect: Optional[ReconnectPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0
        self._reconnect_policy = reconnect
        self._sleep = sleep
        self._connect_args: Optional[Dict[str, Any]] = None
        self.reconnects = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 30.0,
        reconnect: Optional[ReconnectPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "ServeClient":
        """Connect over a unix socket (preferred) or TCP.

        With ``reconnect``, refused/failed connects are retried under the
        policy, and the client remembers how to re-dial for mid-stream
        recovery.
        """
        args = {"socket_path": socket_path, "host": host, "port": port,
                "timeout": timeout}
        attempt = 0
        while True:
            try:
                sock = cls._dial(**args)
                break
            except OSError:
                if reconnect is None or attempt >= reconnect.max_attempts - 1:
                    raise
                sleep(reconnect.delay_s(attempt))
                attempt += 1
        client = cls(sock, reconnect=reconnect, sleep=sleep)
        client._connect_args = args
        return client

    @staticmethod
    def _dial(
        socket_path: Optional[str],
        host: Optional[str],
        port: Optional[int],
        timeout: Optional[float],
    ) -> socket.socket:
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(socket_path)
            except BaseException:
                sock.close()
                raise
            return sock
        if host is not None and port is not None:
            return socket.create_connection((host, port), timeout=timeout)
        raise ValueError("need socket_path or host+port")

    def _redial(self) -> None:
        """Tear down the broken socket and dial the same endpoint again."""
        assert self._connect_args is not None
        self.close()
        self._sock = self._dial(**self._connect_args)
        self._file = self._sock.makefile("rwb")
        self.reconnects += 1

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Raw request/reply
    # ------------------------------------------------------------------

    def request(self, kind: str, **payload: Any) -> Dict[str, Any]:
        """Send one request; return the ``result`` object of the reply.

        Raises :class:`ServeRequestError` for error replies and
        :class:`ServeProtocolViolation` if the stream breaks (after
        exhausting the reconnect policy, for idempotent kinds).
        """
        self._next_id += 1
        frame = {
            "v": protocol.PROTOCOL_VERSION,
            "kind": kind,
        }
        frame.update(payload)
        # The correlation id goes last on the wire: the server's raw-line
        # memo keys repeat requests by their id-stripped byte prefix, and
        # only a trailing id splits off without re-encoding the frame.
        frame["id"] = self._next_id
        data = protocol.encode_frame(frame)
        try:
            self.send_raw(data)
            reply = self.read_reply()
        except (ServeProtocolViolation, OSError) as exc:
            reply = self._retry_request(kind, data, exc)
        if reply.get("id") != self._next_id:
            raise ServeProtocolViolation(
                f"reply id {reply.get('id')!r} does not match request "
                f"id {self._next_id}"
            )
        return self._unwrap(reply)

    def _retry_request(
        self, kind: str, data: bytes, cause: Exception
    ) -> Dict[str, Any]:
        """Reconnect-and-resend after a mid-request stream break."""
        policy = self._reconnect_policy
        if (
            policy is None
            or self._connect_args is None
            or kind not in IDEMPOTENT_KINDS
        ):
            raise cause
        last: Exception = cause
        for attempt in range(policy.max_attempts):
            self._sleep(policy.delay_s(attempt))
            try:
                self._redial()
                self.send_raw(data)
                return self.read_reply()
            except (ServeProtocolViolation, OSError) as exc:
                last = exc
        raise last

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (exposed for fault-injection tests)."""
        self._file.write(data)
        self._file.flush()

    def read_reply(self) -> Dict[str, Any]:
        """Read and decode one reply frame."""
        line = self._file.readline()
        if not line:
            raise ServeProtocolViolation("connection closed by server")
        try:
            return protocol.decode_frame(line)
        except protocol.ProtocolError as exc:
            raise ServeProtocolViolation(str(exc)) from exc

    @staticmethod
    def _unwrap(reply: Dict[str, Any]) -> Dict[str, Any]:
        if reply.get("ok"):
            result = reply.get("result")
            return result if isinstance(result, dict) else {}
        error = reply.get("error") or {}
        raise ServeRequestError(
            error.get("code", "internal"), error.get("message", "unknown error")
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The server's liveness/identity report."""
        return self.request("health")

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot."""
        return self.request("stats")

    def predict(
        self,
        epochs: Sequence[Epoch],
        base_freq_ghz: float,
        predictor: str = "DEP+BURST",
        target_freqs_ghz: Optional[Sequence[float]] = None,
        across_epoch_ctp: bool = True,
    ) -> Dict[str, Any]:
        """Predict the epoch window's duration at each target frequency."""
        payload: Dict[str, Any] = {
            "predictor": predictor,
            "across_epoch_ctp": across_epoch_ctp,
            "base_freq_ghz": base_freq_ghz,
            "epochs": [protocol.epoch_to_wire(epoch) for epoch in epochs],
        }
        if target_freqs_ghz is not None:
            payload["target_freqs_ghz"] = list(target_freqs_ghz)
        return self.request("predict", **payload)

    def open_session(
        self,
        config: Optional[ManagerConfig] = None,
        predictor: str = "DEP+BURST",
        across_epoch_ctp: bool = True,
        session_key: Optional[str] = None,
    ) -> "GovernSession":
        """Open a server-side governor session.

        ``session_key`` is a frame-level routing hint: a pool frontend
        pins the session to ``shard_for_key(session_key)``'s worker, so
        re-opened sessions with the same key land on the same worker.
        Standalone servers ignore it.
        """
        wire_config: Dict[str, Any] = {
            "predictor": predictor,
            "across_epoch_ctp": across_epoch_ctp,
        }
        if config is not None:
            wire_config.update(
                tolerable_slowdown=config.tolerable_slowdown,
                hold_off=config.hold_off,
                min_busy_ns=config.min_busy_ns,
                slack_banking=config.slack_banking,
                objective=config.objective,
            )
        extra: Dict[str, Any] = {}
        if session_key is not None:
            extra["session_key"] = session_key
        result = self.request("govern", op="open", config=wire_config, **extra)
        return GovernSession(self, result["session"])


class GovernSession:
    """Client handle of one server-side governor session.

    Mirrors :meth:`repro.energy.manager.EnergyManagerSession.step` so the
    in-process governor and the remote one are drop-in replacements for
    each other in replay code.
    """

    def __init__(self, client: ServeClient, session_id: str) -> None:
        self.client = client
        self.session_id = session_id
        self.decisions: List[ManagerDecision] = []

    def step(
        self, record: IntervalRecord, epochs: Sequence[Epoch]
    ) -> Optional[float]:
        """Step one quantum; returns the frequency to switch to (or None)."""
        result = self.client.request(
            "govern",
            op="step",
            session=self.session_id,
            record=protocol.record_to_wire(record),
            epochs=[protocol.epoch_to_wire(epoch) for epoch in epochs],
        )
        decision = result.get("decision")
        if decision is not None:
            self.decisions.append(
                ManagerDecision(
                    interval_index=decision["interval_index"],
                    base_freq_ghz=decision["base_freq_ghz"],
                    chosen_freq_ghz=decision["chosen_freq_ghz"],
                    predicted_slowdown=decision["predicted_slowdown"],
                )
            )
        return result.get("freq_ghz")

    def close(self) -> List[ManagerDecision]:
        """Close the session; return the server's full decision log."""
        result = self.client.request(
            "govern", op="close", session=self.session_id
        )
        return [
            ManagerDecision(
                interval_index=d["interval_index"],
                base_freq_ghz=d["base_freq_ghz"],
                chosen_freq_ghz=d["chosen_freq_ghz"],
                predicted_slowdown=d["predicted_slowdown"],
            )
            for d in result.get("decisions", [])
        ]


class ShardedServeClient:
    """A client holding one connection per pool worker, routed by shard.

    For callers that want to skip the frontend hop and speak to a unix
    pool's private worker sockets directly. Stateless requests rotate
    round-robin across workers; sessions are pinned to
    ``shard_for_key(session_key)`` — the same placement the frontend
    would compute — and their :class:`GovernSession` handle is bound to
    that worker's connection, so stepping routes itself.
    """

    def __init__(self, clients: Sequence[ServeClient]) -> None:
        if not clients:
            raise ValueError("need at least one worker client")
        self.clients = list(clients)
        self._rotation = 0

    @classmethod
    def connect_workers(
        cls,
        worker_paths: Sequence[str],
        timeout: Optional[float] = 30.0,
        reconnect: Optional[ReconnectPolicy] = None,
    ) -> "ShardedServeClient":
        """Connect to every private worker socket of a unix-mode pool."""
        clients: List[ServeClient] = []
        try:
            for path in worker_paths:
                clients.append(ServeClient.connect(
                    socket_path=path, timeout=timeout, reconnect=reconnect
                ))
        except BaseException:
            for client in clients:
                client.close()
            raise
        return cls(clients)

    @property
    def n_workers(self) -> int:
        return len(self.clients)

    def _next(self) -> ServeClient:
        client = self.clients[self._rotation % len(self.clients)]
        self._rotation += 1
        return client

    def close(self) -> None:
        for client in self.clients:
            client.close()

    def __enter__(self) -> "ShardedServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._next().health()

    def stats(self) -> Dict[str, Any]:
        """The fleet stats snapshot (any worker merges its peers')."""
        return self._next().stats()

    def predict(self, *args: Any, **kwargs: Any) -> Dict[str, Any]:
        """Predict on the next worker in rotation (stateless)."""
        return self._next().predict(*args, **kwargs)

    def open_session(
        self,
        config: Optional[ManagerConfig] = None,
        predictor: str = "DEP+BURST",
        across_epoch_ctp: bool = True,
        session_key: Optional[str] = None,
    ) -> "GovernSession":
        """Open a session on its shard's worker (round-robin if keyless)."""
        if session_key is not None:
            client = self.clients[shard_for_key(session_key, len(self.clients))]
        else:
            client = self._next()
        return client.open_session(
            config=config,
            predictor=predictor,
            across_epoch_ctp=across_epoch_ctp,
            session_key=session_key,
        )


def replay_decisions(
    client: "ServeClient | ShardedServeClient",
    trace: SimulationTrace,
    config: ManagerConfig,
    predictor: str = "DEP+BURST",
    session_key: Optional[str] = None,
) -> List[ManagerDecision]:
    """Replay a managed trace through a server session; return its decisions.

    Feeds the session exactly what the in-process manager consumed: each
    interval record plus the epoch slice
    :func:`repro.energy.manager.interval_epochs` extracts for it. The
    final record is skipped — the simulator closes it at teardown, after
    the last quantum boundary, so the live governor never saw it. The
    returned sequence must therefore be byte-identical to the decision
    log of the :class:`~repro.energy.manager.EnergyManager` that governed
    the original run.
    """
    session = client.open_session(
        config=config, predictor=predictor, session_key=session_key
    )
    for record in trace.intervals[:-1]:
        session.step(record, interval_epochs(record, trace))
    return session.close()
