"""Online prediction service: DVFS predictions and governor decisions
over the wire.

The paper's energy manager is an *online* consumer of the predictors —
every 5 ms quantum it reads counters, predicts slowdown per candidate
frequency, and picks a set point. This package deploys exactly that shape
as a long-running asyncio server speaking a versioned newline-delimited-
JSON protocol over a unix socket or TCP:

* ``predict`` — counter-delta epochs in, per-frequency predicted
  durations out, for any registered predictor (DEP+BURST, M+CRIT, COOP,
  ...). Concurrent requests are coalesced into vectorized batches
  (:mod:`repro.core.vectorized`) under a max-batch/max-delay window.
* ``govern`` — stateful energy-manager sessions
  (:class:`repro.energy.manager.EnergyManagerSession` held server-side):
  open a session with a :class:`~repro.energy.manager.ManagerConfig`,
  step it one interval at a time, and receive the byte-identical
  frequency decisions an in-process manager would have made.
* ``health`` / ``stats`` — liveness and the metrics surface (per-endpoint
  request counters, latency histograms, batch-size histogram, overload
  counts).

Bounded per-connection queues shed load with explicit ``overloaded``
error replies instead of buffering without limit, and malformed frames or
predictor failures degrade to structured error replies instead of killing
the connection. See ARCHITECTURE.md for the frame format.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.server import ServeConfig, Server

__all__ = ["PROTOCOL_VERSION", "ServeClient", "ServeConfig", "Server"]
