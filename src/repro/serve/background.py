"""Run a :class:`~repro.serve.server.Server` on a background thread.

The serve stack is asyncio, but its callers in this repo — the replay
parity driver, the load generator, the test suite — are synchronous.
:class:`BackgroundServer` owns a private event loop on a daemon thread
and proxies start/stop across it, so blocking code can stand up a real
server (unix socket and/or TCP) in-process::

    with BackgroundServer(ServeConfig(socket_path=path)) as server:
        client = ServeClient.connect(socket_path=path)
        ...

Stopping is idempotent; the loop and thread are torn down with the
server.
"""

from __future__ import annotations

import asyncio
import threading
from typing import List, Optional

from repro.serve.server import ServeConfig, Server


class BackgroundServer:
    """A serve :class:`Server` running on its own event-loop thread."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.server = Server(config)
        self.endpoints: List[str] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    def start(self) -> List[str]:
        """Start the loop thread and the server; return its endpoints."""
        if self._loop is not None:
            raise RuntimeError("server already started")
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=self._run_loop, args=(loop,), name="repro-serve", daemon=True
        )
        thread.start()
        self._loop, self._thread = loop, thread
        future = asyncio.run_coroutine_threadsafe(self.server.start(), loop)
        try:
            self.endpoints = future.result(timeout=30)
        except Exception:
            self.stop()
            raise
        return self.endpoints

    def stop(self) -> None:
        """Stop the server and tear down the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), loop
            ).result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=30)
            loop.close()

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port, if a TCP endpoint was configured."""
        return self.server.tcp_port

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------

    @staticmethod
    def _run_loop(loop: asyncio.AbstractEventLoop) -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_forever()
        finally:
            # Cancel anything the server's stop() left behind.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
