"""Fleet-wide metrics exchange for pooled serve workers.

Workers are separate processes; there is no shared memory and no peer
networking between them. What they do share is a directory. Each worker
periodically publishes its :meth:`~repro.serve.metrics.MetricsRegistry.
snapshot` there (atomic rename, one file per worker), and any worker
answering a ``stats`` request reads its peers' latest snapshots and
merges them into a fleet view (:func:`repro.serve.metrics.
merge_snapshots`). Peers' numbers can be up to one publish interval
stale; the publisher's own snapshot is always fresh, and every ``stats``
request forces an immediate publish so an external poller that asks each
worker in turn converges on exact totals.

Corrupt or half-written files are skipped (atomic renames make those
rare); a missing peer file simply means that worker has not published
yet (or died — its last snapshot continues to represent it until the
pool is torn down).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.common.store import atomic_write_text

_PathLike = Union[str, Path]


class FleetDirectory:
    """One worker's handle on the shared metrics directory."""

    def __init__(self, root: _PathLike) -> None:
        self.root = Path(root)

    def _path(self, worker_id: int) -> Path:
        return self.root / f"metrics-w{worker_id}.json"

    def publish(self, worker_id: int, snapshot: Dict[str, Any]) -> None:
        """Atomically publish one worker's metrics snapshot."""
        document = dict(snapshot, worker_id=worker_id, published_at=time.time())
        atomic_write_text(
            self._path(worker_id), json.dumps(document, separators=(",", ":"))
        )

    def read(self, worker_id: int) -> Optional[Dict[str, Any]]:
        """One worker's latest snapshot, or None (absent/corrupt)."""
        try:
            document = json.loads(self._path(worker_id).read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict) or document.get("worker_id") != worker_id:
            return None
        return document

    def read_all(self) -> Dict[int, Dict[str, Any]]:
        """Every published snapshot, keyed by worker id."""
        snapshots: Dict[int, Dict[str, Any]] = {}
        if not self.root.is_dir():
            return snapshots
        for path in sorted(self.root.glob("metrics-w*.json")):
            try:
                worker_id = int(path.stem[len("metrics-w"):])
            except ValueError:
                continue
            snapshot = self.read(worker_id)
            if snapshot is not None:
                snapshots[worker_id] = snapshot
        return snapshots
