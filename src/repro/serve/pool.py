"""Multi-process worker pool for the serve tier.

Prediction math is GIL-bound NumPy, so one asyncio process saturates one
core; scaling past that means *processes*. :class:`WorkerPool` spawns N
:class:`~repro.serve.server.Server` workers (spawn context — no forked
event-loop state), each with:

* its own listener — a private unix socket derived from the public path
  (``/run/repro.sock`` -> ``/run/repro.sock.w0`` ...), or the shared TCP
  port bound with ``SO_REUSEPORT`` so the kernel balances accepted
  connections across workers;
* a ``worker_id`` so minted session ids carry routing affinity
  (:mod:`repro.serve.sharding`);
* a shared fleet-metrics directory (:mod:`repro.serve.fleet`) — created
  and owned by the pool when the config does not name one — so ``stats``
  on any worker reports the whole pool;
* optionally a shared prediction-cache directory
  (:mod:`repro.serve.predcache`), same ownership rule.

The pool is synchronous (the CLI and the test suite drive it from
blocking code): ``start()`` spawns and waits for every worker to answer
``health``; ``stop()`` sends SIGTERM, joins, and escalates to kill after
a timeout. Unix-mode pools are usually fronted by
:class:`repro.serve.frontend.Frontend` on the public path.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import logging
import multiprocessing
import os
import shutil
import signal
import socket
import sys
import tempfile
import time
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.serve.server import ServeConfig, Server
from repro.serve.sharding import worker_socket_path

log = logging.getLogger("repro.serve.pool")


def resolve_tcp_port(host: str) -> int:
    """Pick a concrete free port for a reuse-port worker group.

    Ephemeral binding (port 0) would hand every worker a *different*
    port; a shared listener needs one number up front. The classic
    bind-close-reuse race is acceptable for the pool's callers (tests,
    benchmarks, CLIs on loopback).
    """
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def worker_config(base: ServeConfig, worker_id: int, n_workers: int,
                  fleet_dir: str,
                  predict_cache_dir: Optional[str]) -> ServeConfig:
    """Derive one worker's config from the pool's public config."""
    changes = dict(
        worker_id=worker_id,
        n_workers=n_workers,
        fleet_dir=fleet_dir,
        predict_cache_dir=predict_cache_dir,
    )
    if base.socket_path is not None:
        changes["socket_path"] = worker_socket_path(base.socket_path, worker_id)
        changes["host"] = None  # TCP, if any, is the frontend's job
    else:
        changes["reuse_port"] = True
    return dataclasses.replace(base, **changes)


def _worker_main(config: ServeConfig) -> None:
    """Entry point of one spawned worker process."""
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    asyncio.run(_worker_run(config))


async def _worker_run(config: ServeConfig) -> None:
    server = Server(config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        await server.stop()
        if config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(config.socket_path)


class WorkerPool:
    """N serve workers sharing a listener, a fleet dir and a cache."""

    def __init__(
        self,
        base: ServeConfig,
        n_workers: int,
        shared_cache: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ConfigError("n_workers must be >= 1")
        if base.socket_path is None:
            if base.host is None:
                raise ConfigError("pool config needs a socket_path or a host")
            if base.port == 0:
                base = dataclasses.replace(
                    base, port=resolve_tcp_port(base.host)
                )
        self.base = base
        self.n_workers = n_workers
        self._own_dir: Optional[str] = None
        fleet_dir = base.fleet_dir
        predict_cache_dir = base.predict_cache_dir
        if fleet_dir is None or (shared_cache and predict_cache_dir is None):
            self._own_dir = tempfile.mkdtemp(prefix="repro-serve-pool-")
            if fleet_dir is None:
                fleet_dir = os.path.join(self._own_dir, "fleet")
                os.mkdir(fleet_dir)
            if shared_cache and predict_cache_dir is None:
                predict_cache_dir = os.path.join(self._own_dir, "predcache")
                os.mkdir(predict_cache_dir)
        self.fleet_dir = fleet_dir
        self.predict_cache_dir = predict_cache_dir
        self.worker_configs = [
            worker_config(base, i, n_workers, fleet_dir, predict_cache_dir)
            for i in range(n_workers)
        ]
        self._processes: List[multiprocessing.Process] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def unix_mode(self) -> bool:
        return self.base.socket_path is not None

    def worker_paths(self) -> List[str]:
        """Private unix-socket paths (unix mode only)."""
        return [c.socket_path for c in self.worker_configs
                if c.socket_path is not None]

    def worker_endpoint(self, worker_id: int) -> dict:
        """connect() kwargs reaching one specific worker directly.

        In TCP reuse-port mode every worker answers on the shared port,
        so 'directly' is only meaningful per-connection there; unix mode
        pins exactly.
        """
        config = self.worker_configs[worker_id]
        if config.socket_path is not None:
            return {"socket_path": config.socket_path}
        return {"host": config.host, "port": config.port}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, ready_timeout: float = 60.0) -> None:
        """Spawn every worker and wait until each answers ``health``."""
        if self._processes:
            raise RuntimeError("pool already started")
        context = multiprocessing.get_context("spawn")
        for config in self.worker_configs:
            process = context.Process(
                target=_worker_main, args=(config,), daemon=True,
                name=f"repro-serve-w{config.worker_id}",
            )
            process.start()
            self._processes.append(process)
        try:
            self._wait_ready(ready_timeout)
        except Exception:
            self.stop()
            raise

    def _wait_ready(self, timeout: float) -> None:
        from repro.serve.client import ServeClient

        deadline = time.monotonic() + timeout
        for worker_id in range(self.n_workers):
            endpoint = self.worker_endpoint(worker_id)
            while True:
                process = self._processes[worker_id]
                if not process.is_alive():
                    raise RuntimeError(
                        f"worker {worker_id} exited with code "
                        f"{process.exitcode} during startup"
                    )
                try:
                    with ServeClient.connect(timeout=5.0, **endpoint) as probe:
                        probe.health()
                    break
                except (OSError, ConnectionError):
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"worker {worker_id} not ready within {timeout}s"
                        ) from None
                    time.sleep(0.05)

    def alive(self) -> List[bool]:
        return [p.is_alive() for p in self._processes]

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every worker; join; escalate to kill; clean up."""
        for process in self._processes:
            if process.is_alive():
                with contextlib.suppress(OSError, ValueError):
                    process.terminate()
        deadline = time.monotonic() + timeout
        for process in self._processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                log.warning("worker %s ignored SIGTERM; killing", process.name)
                with contextlib.suppress(OSError, ValueError):
                    process.kill()
                process.join(timeout=5.0)
        self._processes.clear()
        for config in self.worker_configs:
            if config.socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(config.socket_path)
        if self._own_dir is not None:
            shutil.rmtree(self._own_dir, ignore_errors=True)
            self._own_dir = None

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
