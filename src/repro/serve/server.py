"""The asyncio prediction server.

One process, one event loop, no worker threads: prediction math is
GIL-bound NumPy, so the win comes from coalescing concurrent requests
into vectorized batches (:mod:`repro.serve.batching`), not from
parallelism. The server listens on a unix socket and/or TCP and speaks
the NDJSON protocol of :mod:`repro.serve.protocol`.

Failure containment, per the subsystem contract:

* malformed JSON or schema violations -> structured error reply, the
  connection lives on;
* an oversized frame or a frame truncated by EOF -> best-effort error
  reply, then the connection is closed (the byte stream cannot be
  resynchronized reliably);
* predictor exceptions -> ``predict-error`` replies, connection lives on;
* per-connection in-flight ``predict`` requests are capped
  (``queue_depth``); excess requests are shed immediately with
  ``overloaded`` replies — the server never buffers without bound. Reply
  writes go through ``drain()``, so a slow reader additionally exerts
  TCP/socket backpressure instead of growing the write buffer.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import __version__
from repro.common.errors import ConfigError, ReproError
from repro.arch.specs import MachineSpec, haswell_i7_4770k
from repro.core.predictors import get_predictor, predictor_names
from repro.core.vectorized import PredictJob
from repro.serve import protocol
from repro.serve.batching import PredictBatcher
from repro.serve.fleet import FleetDirectory
from repro.serve.metrics import (
    MetricsRegistry,
    merge_snapshots,
    worker_summary,
)
from repro.serve.predcache import PredictionCache, split_raw_line
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import SessionStore, decision_to_wire

log = logging.getLogger("repro.serve")

#: Reply-envelope bytes of the raw-memo fast path. Concatenation must
#: reproduce ``encode_frame(ok_reply(...))`` exactly — same key order
#: (v, id, ok, result), same separators — so memo replies stay
#: byte-identical to cold computes; test_server pins this.
_REPLY_HEAD = ('{"v":%d,"id":' % protocol.PROTOCOL_VERSION).encode("ascii")
_REPLY_MID = b',"ok":true,"result":'


@dataclass
class ServeConfig:
    """Everything a server instance needs to listen and behave."""

    #: Unix socket path (preferred transport; None disables).
    socket_path: Optional[str] = None
    #: TCP host (None disables TCP; port 0 picks an ephemeral port).
    host: Optional[str] = None
    port: int = 0
    #: Batching window of the predict hot path.
    max_batch: int = 64
    max_delay_s: float = 0.002
    #: Hard cap on one frame's size (bytes).
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: Per-connection in-flight predict cap; excess is shed as overloaded.
    queue_depth: int = 64
    #: Cap on simultaneously open governor sessions.
    max_sessions: int = 1024
    #: Seconds between structured stats log lines (0 disables).
    log_interval_s: float = 0.0
    #: Bind TCP with SO_REUSEPORT so pool workers share one listening
    #: port (the kernel balances accepted connections across them).
    reuse_port: bool = False
    #: This worker's index in a pool (None = standalone server).
    worker_id: Optional[int] = None
    #: Pool size (1 = standalone).
    n_workers: int = 1
    #: Shared directory for cross-worker metrics snapshots (None disables
    #: fleet aggregation; ``stats`` then reports this worker only).
    fleet_dir: Optional[str] = None
    #: Seconds between periodic fleet-metrics publishes.
    fleet_publish_interval_s: float = 1.0
    #: Shared directory of the cross-worker prediction cache (None
    #: disables the file tier).
    predict_cache_dir: Optional[str] = None
    #: Entries of the in-process prediction-cache LRU tier (0 disables;
    #: the cache as a whole is off when this is 0 and no dir is set).
    predict_cache_mem: int = 0
    #: Machine whose DVFS range the predictions and sessions use.
    spec: MachineSpec = field(default_factory=haswell_i7_4770k)

    def __post_init__(self) -> None:
        if self.socket_path is None and self.host is None:
            raise ConfigError("serve config needs a socket_path and/or a host")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.max_delay_s < 0:
            raise ConfigError("max_delay_s must be >= 0")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.n_workers < 1:
            raise ConfigError("n_workers must be >= 1")
        if self.worker_id is not None and not (
            0 <= self.worker_id < self.n_workers
        ):
            raise ConfigError(
                f"worker_id {self.worker_id} outside pool of {self.n_workers}"
            )
        if self.predict_cache_mem < 0:
            raise ConfigError("predict_cache_mem must be >= 0")

    @property
    def predict_cache_enabled(self) -> bool:
        return self.predict_cache_mem > 0 or self.predict_cache_dir is not None


class Server:
    """The prediction service (construct, ``await start()``, ``await stop()``)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry(max_batch=config.max_batch)
        self.batcher = PredictBatcher(
            max_batch=config.max_batch,
            max_delay_s=config.max_delay_s,
            metrics=self.metrics,
        )
        self.sessions = SessionStore(
            config.spec,
            max_sessions=config.max_sessions,
            worker_id=config.worker_id,
        )
        self.prediction_cache: Optional[PredictionCache] = None
        if config.predict_cache_enabled:
            self.prediction_cache = PredictionCache(
                config.spec,
                shared_dir=config.predict_cache_dir,
                max_memory_entries=config.predict_cache_mem,
            )
        self.fleet: Optional[FleetDirectory] = None
        if config.fleet_dir is not None:
            self.fleet = FleetDirectory(config.fleet_dir)
        self._predictors: Dict[Tuple[str, bool], object] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._log_task: Optional[asyncio.Task] = None
        self._fleet_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> List[str]:
        """Bind all configured endpoints; return their addresses."""
        endpoints: List[str] = []
        if self.config.socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.socket_path,
                limit=self.config.max_frame_bytes,
            )
            self._servers.append(server)
            endpoints.append(f"unix:{self.config.socket_path}")
        if self.config.host is not None:
            kwargs: Dict[str, Any] = {}
            if self.config.reuse_port:
                kwargs["reuse_port"] = True
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=self.config.max_frame_bytes,
                **kwargs,
            )
            self._servers.append(server)
            for sock in server.sockets:
                host, port = sock.getsockname()[:2]
                endpoints.append(f"tcp:{host}:{port}")
        if self.config.log_interval_s > 0:
            self._log_task = asyncio.get_running_loop().create_task(
                self._log_periodically()
            )
        if self.fleet is not None:
            self._publish_fleet()
            if self.config.fleet_publish_interval_s > 0:
                self._fleet_task = asyncio.get_running_loop().create_task(
                    self._publish_periodically()
                )
        log.info("repro-serve listening on %s", ", ".join(endpoints))
        return endpoints

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (after start), if TCP is enabled."""
        for server in self._servers:
            for sock in server.sockets:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[1]
        return None

    async def serve_forever(self) -> None:
        """Block until cancelled."""
        if not self._servers:
            await self.start()
        await asyncio.gather(*(s.serve_forever() for s in self._servers))

    async def stop(self) -> None:
        """Close listeners and all live connections."""
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self._log_task is not None:
            self._log_task.cancel()
            self._log_task = None
        if self._fleet_task is not None:
            self._fleet_task.cancel()
            self._fleet_task = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self.fleet is not None:
            self._publish_fleet()

    async def _log_periodically(self) -> None:
        while True:
            await asyncio.sleep(self.config.log_interval_s)
            log.info("%s", self.metrics.log_line())

    def _publish_fleet(self) -> None:
        assert self.fleet is not None
        try:
            self.fleet.publish(
                self.config.worker_id or 0, self.metrics.snapshot()
            )
        except OSError:  # a torn-down fleet dir must not kill the worker
            log.warning("fleet publish failed", exc_info=True)

    async def _publish_periodically(self) -> None:
        while True:
            await asyncio.sleep(self.config.fleet_publish_interval_s)
            self._publish_fleet()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_opened += 1
        self.metrics.connections_active += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        inflight = [0]  # mutable so predict tasks can decrement
        request_tasks: set = set()
        try:
            await self._read_loop(reader, writer, write_lock, inflight,
                                  request_tasks)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for pending in request_tasks:
                pending.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.metrics.connections_active -= 1
            if task is not None:
                self._conn_tasks.discard(task)

    async def _read_loop(
        self, reader, writer, write_lock, inflight, request_tasks
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Frame exceeded max_frame_bytes: the stream position is
                # unknowable now, so reply and hang up.
                self.metrics.frames_rejected += 1
                await self._send(
                    writer, write_lock,
                    protocol.error_reply(
                        None, "bad-frame",
                        f"frame exceeds {self.config.max_frame_bytes} bytes",
                    ),
                )
                return
            if not line:
                return  # clean EOF
            if not line.endswith(b"\n"):
                # EOF in the middle of a frame: truncated.
                self.metrics.frames_rejected += 1
                await self._send(
                    writer, write_lock,
                    protocol.error_reply(
                        None, "bad-frame", "truncated frame (EOF before newline)"
                    ),
                )
                return
            await self._dispatch(
                line, writer, write_lock, inflight, request_tasks
            )

    async def _send(self, writer, write_lock, payload: Mapping[str, Any]) -> None:
        """Serialize one reply; drain so slow readers exert backpressure."""
        await self._send_bytes(writer, write_lock, protocol.encode_frame(payload))

    async def _send_bytes(self, writer, write_lock, data: bytes) -> None:
        async with write_lock:
            writer.write(data)
            try:
                await writer.drain()
            except ConnectionError:
                pass

    async def _dispatch(
        self, line, writer, write_lock, inflight, request_tasks
    ) -> None:
        started = time.perf_counter()
        cache = self.prediction_cache
        raw_split = None
        if cache is not None and cache.raw is not None:
            # L0: a byte-identical repeat of an answered predict (modulo
            # its trailing correlation id) replays the stored reply bytes
            # without any JSON decode or encode. Prefix equality implies
            # the frames are the same JSON text, so this can never serve
            # a wrong answer — only miss into the ordinary path.
            raw_split = split_raw_line(line)
            if raw_split is not None:
                fragment = cache.raw.get(raw_split[0])
                if fragment is not None:
                    self.metrics.predict_cache_hits += 1
                    self.metrics.endpoint("predict").observe(
                        time.perf_counter() - started
                    )
                    await self._send_bytes(
                        writer, write_lock,
                        _REPLY_HEAD + raw_split[1] + _REPLY_MID
                        + fragment + b"}\n",
                    )
                    return
        frame: Optional[Dict[str, Any]] = None
        try:
            frame = protocol.decode_frame(line)
            kind = protocol.check_envelope(frame)
        except ProtocolError as exc:
            self.metrics.frames_rejected += 1
            self.metrics.endpoint("invalid").observe(
                time.perf_counter() - started, error_code=exc.code
            )
            await self._send(
                writer, write_lock, protocol.error_reply(frame, exc.code, exc.message)
            )
            return

        if kind == "predict":
            await self._dispatch_predict(
                frame, writer, write_lock, inflight, request_tasks, started,
                raw_prefix=raw_split[0] if raw_split is not None else None,
            )
            return

        try:
            if kind == "health":
                result = self._health_result()
            elif kind == "stats":
                result = self._stats_result()
            else:  # govern
                result = self._govern(frame)
            reply = protocol.ok_reply(frame, result)
            code = None
        except ProtocolError as exc:
            reply = protocol.error_reply(frame, exc.code, exc.message)
            code = exc.code
        except ReproError as exc:
            reply = protocol.error_reply(frame, "predict-error", str(exc))
            code = "predict-error"
        except Exception as exc:  # noqa: BLE001 — connection must survive
            log.exception("internal error handling %s", kind)
            reply = protocol.error_reply(frame, "internal", repr(exc))
            code = "internal"
        if code == "overloaded":
            self.metrics.overloaded += 1
        self.metrics.endpoint(kind).observe(
            time.perf_counter() - started, error_code=code
        )
        await self._send(writer, write_lock, reply)

    # ------------------------------------------------------------------
    # predict
    # ------------------------------------------------------------------

    def _splice_reply(self, frame: Mapping[str, Any], fragment: str) -> bytes:
        """Assemble a reply around a pre-encoded result fragment.

        The fragment is the cold compute's exact ``result`` bytes, so a
        cache hit's reply is byte-identical to the original (modulo the
        correlation id) — repr-exact float equality for free.
        """
        envelope = json.dumps(
            {"v": protocol.PROTOCOL_VERSION, "id": frame.get("id"), "ok": True},
            separators=(",", ":"),
            allow_nan=False,
        )
        return (envelope[:-1] + ',"result":' + fragment + "}\n").encode("utf-8")

    async def _dispatch_predict(
        self, frame, writer, write_lock, inflight, request_tasks, started,
        raw_prefix: Optional[bytes] = None,
    ) -> None:
        cache = self.prediction_cache
        cache_key: Optional[str] = None
        if cache is not None:
            cache_key = cache.key_for(frame)
            if cache_key is not None:
                fragment = cache.lookup(cache_key)
                if fragment is not None:
                    # Warm hit: skip parsing, batching and evaluation. The
                    # payload validated when the entry was computed cold —
                    # the key proves the bytes are the same question. Seed
                    # the raw memo so the next repeat skips JSON entirely.
                    if raw_prefix is not None and cache.raw is not None:
                        cache.raw.put(
                            raw_prefix, fragment.encode("utf-8")
                        )
                    self.metrics.predict_cache_hits += 1
                    self.metrics.endpoint("predict").observe(
                        time.perf_counter() - started
                    )
                    await self._send_bytes(
                        writer, write_lock, self._splice_reply(frame, fragment)
                    )
                    return
                self.metrics.predict_cache_misses += 1
        try:
            job = self._parse_predict(frame)
        except ProtocolError as exc:
            self.metrics.endpoint("predict").observe(
                time.perf_counter() - started, error_code=exc.code
            )
            await self._send(
                writer, write_lock,
                protocol.error_reply(frame, exc.code, exc.message),
            )
            return
        if inflight[0] >= self.config.queue_depth:
            self.metrics.overloaded += 1
            self.metrics.endpoint("predict").observe(
                time.perf_counter() - started, error_code="overloaded"
            )
            await self._send(
                writer, write_lock,
                protocol.error_reply(
                    frame, "overloaded",
                    f"{inflight[0]} predict request(s) already in flight on "
                    f"this connection (queue_depth={self.config.queue_depth})",
                ),
            )
            return
        inflight[0] += 1
        task = asyncio.get_running_loop().create_task(
            self._predict_task(
                frame, job, writer, write_lock, inflight, started, cache_key,
                raw_prefix,
            )
        )
        request_tasks.add(task)
        task.add_done_callback(request_tasks.discard)

    async def _predict_task(
        self, frame, job: PredictJob, writer, write_lock, inflight, started,
        cache_key: Optional[str] = None, raw_prefix: Optional[bytes] = None,
    ) -> None:
        try:
            data: Optional[bytes] = None
            try:
                predicted = await self.batcher.submit(job)
                result = {
                    "predictor": job.predictor.name,
                    "base_freq_ghz": job.base_freq_ghz,
                    "target_freqs_ghz": list(job.target_freqs_ghz),
                    "predicted_ns": predicted,
                }
                cache = self.prediction_cache
                if cache_key is not None and cache is not None:
                    # Serialize the result once; the stored fragment is the
                    # exact bytes of this reply, so future hits replay them
                    # byte-identically.
                    fragment = cache.record(cache_key, result)
                    if raw_prefix is not None and cache.raw is not None:
                        cache.raw.put(raw_prefix, fragment.encode("utf-8"))
                    self.metrics.predict_cache_stores += 1
                    data = self._splice_reply(frame, fragment)
                else:
                    reply = protocol.ok_reply(frame, result)
                code = None
            except asyncio.CancelledError:
                raise
            except ReproError as exc:
                reply = protocol.error_reply(frame, "predict-error", str(exc))
                code = "predict-error"
            except Exception as exc:  # noqa: BLE001
                log.exception("internal error in predict batch")
                reply = protocol.error_reply(frame, "internal", repr(exc))
                code = "internal"
            self.metrics.endpoint("predict").observe(
                time.perf_counter() - started, error_code=code
            )
            if data is None:
                data = protocol.encode_frame(reply)
            await self._send_bytes(writer, write_lock, data)
        finally:
            inflight[0] -= 1

    def _parse_predict(self, frame: Mapping[str, Any]) -> PredictJob:
        name = frame.get("predictor", "DEP+BURST")
        if not isinstance(name, str):
            raise ProtocolError("bad-request", "predictor must be a string")
        ctp = frame.get("across_epoch_ctp", True)
        if not isinstance(ctp, bool):
            raise ProtocolError(
                "bad-request", "across_epoch_ctp must be a boolean"
            )
        predictor = self._predictor(name, ctp)
        base = protocol.require_number(
            frame.get("base_freq_ghz"), "base_freq_ghz", minimum=1e-9
        )
        targets = protocol.target_freqs_from_wire(
            frame.get("target_freqs_ghz"), self.config.spec.frequencies()
        )
        epochs = protocol.epochs_from_wire(frame.get("epochs"))
        return PredictJob(
            predictor=predictor,
            epochs=epochs,
            base_freq_ghz=base,
            target_freqs_ghz=tuple(targets),
        )

    def _predictor(self, name: str, across_epoch_ctp: bool):
        key = (name.strip().upper(), across_epoch_ctp)
        predictor = self._predictors.get(key)
        if predictor is None:
            try:
                predictor = get_predictor(name, across_epoch_ctp=across_epoch_ctp)
            except ConfigError as exc:
                raise ProtocolError("bad-request", str(exc)) from exc
            self._predictors[key] = predictor
        return predictor

    # ------------------------------------------------------------------
    # govern / health
    # ------------------------------------------------------------------

    def _govern(self, frame: Mapping[str, Any]) -> Dict[str, Any]:
        op = frame.get("op")
        if op == "open":
            session_id = self.sessions.open(frame.get("config"))
            self.metrics.sessions_opened += 1
            self.metrics.sessions_active = len(self.sessions)
            return {
                "session": session_id,
                "frequencies_ghz": list(self.config.spec.frequencies()),
            }
        if op == "step":
            record = protocol.record_from_wire(frame.get("record"))
            epochs = protocol.epochs_from_wire(frame.get("epochs", []))
            freq, decision = self.sessions.step(
                frame.get("session"), record, epochs
            )
            return {
                "freq_ghz": freq,
                "decision": decision_to_wire(decision) if decision else None,
            }
        if op == "close":
            session = self.sessions.close(frame.get("session"))
            self.metrics.sessions_active = len(self.sessions)
            return {
                "decisions": [
                    decision_to_wire(d) for d in session.decisions
                ],
            }
        raise ProtocolError(
            "bad-request",
            f"unknown govern op {op!r}; expected 'open', 'step' or 'close'",
        )

    def _health_result(self) -> Dict[str, Any]:
        result = {
            "status": "ok",
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": time.time() - self.metrics.started_at,
            "frequencies_ghz": list(self.config.spec.frequencies()),
            "predictors": predictor_names(),
            "sessions_active": len(self.sessions),
            "batch": {
                "max_batch": self.config.max_batch,
                "max_delay_s": self.config.max_delay_s,
            },
        }
        if self.config.worker_id is not None:
            result["worker_id"] = self.config.worker_id
            result["n_workers"] = self.config.n_workers
        return result

    def _stats_result(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        if self.prediction_cache is not None:
            cache_stats = self.prediction_cache.stats()
            snapshot["predict_cache"]["tiers"] = cache_stats["tiers"]
            if "raw_memo" in cache_stats:
                snapshot["predict_cache"]["raw_memo"] = cache_stats["raw_memo"]
        if self.fleet is None:
            return snapshot
        # Publish first so peers (and the fleet view below) see this
        # worker's numbers as of *this* request, not the last interval.
        self._publish_fleet()
        peers = self.fleet.read_all()
        snapshot["worker_id"] = self.config.worker_id
        snapshot["n_workers"] = self.config.n_workers
        snapshot["per_worker"] = {
            str(i): worker_summary(s) for i, s in sorted(peers.items())
        }
        snapshot["fleet"] = merge_snapshots(peers.values())
        return snapshot
