"""Wire protocol of the prediction service (version 1).

Frames are newline-delimited JSON: one UTF-8 JSON object per line, LF
terminated, no embedded newlines. Requests carry::

    {"v": 1, "kind": "predict" | "govern" | "health" | "stats", "id": ..., ...}

``v`` is the protocol version (this module speaks exactly
:data:`PROTOCOL_VERSION`); ``id`` is an optional client correlation token
echoed verbatim in the reply. Replies are::

    {"v": 1, "id": ..., "ok": true,  "result": {...}}
    {"v": 1, "id": ..., "ok": false, "error": {"code": "...", "message": "..."}}

Error codes are a closed set (:data:`ERROR_CODES`); ``overloaded`` is the
backpressure signal — the request was shed, not queued — and clients are
expected to retry with their own policy.

Counter sets travel as 7-element arrays in
:data:`~repro.arch.counters.COUNTER_FIELDS` order; epochs as::

    {"start_ns": f, "end_ns": f, "stall_tid": int | null,
     "during_gc": bool, "threads": {"<tid>": [7 numbers]}}

All numbers must be finite; counters non-negative. JSON's ``repr``-based
float round-trip is exact for finite doubles, which is what makes the
serve replay driver's byte-identical decision parity possible.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ReproError
from repro.arch.counters import COUNTER_FIELDS, CounterSet
from repro.core.epochs import Epoch
from repro.sim.intervals import IntervalRecord

#: The one protocol version this build speaks.
PROTOCOL_VERSION = 1

#: Default cap on a single frame's encoded size (1 MiB).
MAX_FRAME_BYTES = 1 << 20

#: Request kinds the server dispatches on.
REQUEST_KINDS = ("predict", "govern", "health", "stats")

#: Closed set of error codes replies may carry.
ERROR_CODES = (
    "bad-frame",      # not valid JSON, not an object, or oversized
    "bad-version",    # protocol version mismatch
    "bad-request",    # schema violation (missing/invalid fields)
    "unknown-session",  # govern step/close on a session that does not exist
    "overloaded",     # shed by backpressure; retry later
    "predict-error",  # the predictor rejected the inputs
    "internal",       # unexpected server-side failure
)


class ProtocolError(ReproError):
    """A frame violated the wire protocol."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialize one frame: compact JSON + LF."""
    return (
        json.dumps(payload, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a frame dict (``bad-frame`` on junk)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-frame", f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-frame", f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def check_envelope(frame: Mapping[str, Any]) -> str:
    """Validate version and kind; return the request kind."""
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-version",
            f"unsupported protocol version {version!r}; "
            f"this server speaks v{PROTOCOL_VERSION}",
        )
    kind = frame.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            "bad-request", f"unknown kind {kind!r}; expected one of {REQUEST_KINDS}"
        )
    return kind


def ok_reply(request: Mapping[str, Any], result: Mapping[str, Any]) -> Dict[str, Any]:
    """Success reply envelope echoing the request's correlation id."""
    return {"v": PROTOCOL_VERSION, "id": request.get("id"), "ok": True,
            "result": result}


def error_reply(
    request: Optional[Mapping[str, Any]], code: str, message: str
) -> Dict[str, Any]:
    """Error reply envelope (``request`` may be None for unparsable frames)."""
    assert code in ERROR_CODES, code
    return {
        "v": PROTOCOL_VERSION,
        "id": request.get("id") if isinstance(request, Mapping) else None,
        "ok": False,
        "error": {"code": code, "message": message},
    }


# ----------------------------------------------------------------------
# Payload (de)serialization
# ----------------------------------------------------------------------


def require_number(value: Any, what: str, minimum: Optional[float] = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("bad-request", f"{what} must be a number, got {value!r}")
    number = float(value)
    if not math.isfinite(number):
        raise ProtocolError("bad-request", f"{what} must be finite, got {value!r}")
    if minimum is not None and number < minimum:
        raise ProtocolError(
            "bad-request", f"{what} must be >= {minimum}, got {value!r}"
        )
    return number


def counters_to_wire(counters: CounterSet) -> List[float]:
    """CounterSet -> 7-element array in COUNTER_FIELDS order."""
    return [getattr(counters, field) for field in COUNTER_FIELDS]


def counters_from_wire(values: Any, what: str = "counters") -> CounterSet:
    """7-element array -> CounterSet, validating shape and ranges."""
    # Fast path: well-formed frames dominate the predict hot loop (dozens
    # of counter arrays per request), so validate with type checks alone
    # and only fall through to the per-element path — which produces the
    # precise field-level error message — when something is off.
    if isinstance(values, list) and len(values) == len(COUNTER_FIELDS):
        valid = True
        for v in values:
            t = type(v)
            if t is float:
                if not (0.0 <= v < math.inf):  # rejects nan/inf/negative
                    valid = False
                    break
            elif t is int:
                if v < 0:
                    valid = False
                    break
            else:
                valid = False
                break
        if valid:
            return CounterSet(
                active_ns=float(values[0]),
                crit_ns=float(values[1]),
                leading_ns=float(values[2]),
                stall_ns=float(values[3]),
                sqfull_ns=float(values[4]),
                insns=int(values[5]),
                stores=int(values[6]),
            )
    if not isinstance(values, list) or len(values) != len(COUNTER_FIELDS):
        raise ProtocolError(
            "bad-request",
            f"{what} must be an array of {len(COUNTER_FIELDS)} numbers "
            f"in {COUNTER_FIELDS} order",
        )
    numbers = [
        require_number(v, f"{what}[{field}]", minimum=0.0)
        for field, v in zip(COUNTER_FIELDS, values)
    ]
    return CounterSet(
        active_ns=numbers[0],
        crit_ns=numbers[1],
        leading_ns=numbers[2],
        stall_ns=numbers[3],
        sqfull_ns=numbers[4],
        insns=int(numbers[5]),
        stores=int(numbers[6]),
    )


def epoch_to_wire(epoch: Epoch) -> Dict[str, Any]:
    """Epoch -> wire dict."""
    return {
        "start_ns": epoch.start_ns,
        "end_ns": epoch.end_ns,
        "stall_tid": epoch.stall_tid,
        "during_gc": epoch.during_gc,
        "threads": {
            str(tid): counters_to_wire(counters)
            for tid, counters in epoch.thread_deltas.items()
        },
    }


def epoch_from_wire(payload: Any, index: int) -> Epoch:
    """Wire dict -> Epoch, validating every field."""
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", f"epochs[{index}] must be an object")
    start = require_number(payload.get("start_ns"), f"epochs[{index}].start_ns")
    end = require_number(payload.get("end_ns"), f"epochs[{index}].end_ns")
    if end < start:
        raise ProtocolError(
            "bad-request", f"epochs[{index}] ends before it starts"
        )
    stall_tid = payload.get("stall_tid")
    if stall_tid is not None and not isinstance(stall_tid, int):
        raise ProtocolError(
            "bad-request", f"epochs[{index}].stall_tid must be an int or null"
        )
    threads_raw = payload.get("threads", {})
    if not isinstance(threads_raw, dict):
        raise ProtocolError(
            "bad-request", f"epochs[{index}].threads must be an object"
        )
    deltas: Dict[int, CounterSet] = {}
    for key, values in threads_raw.items():
        try:
            tid = int(key)
        except (TypeError, ValueError):
            raise ProtocolError(
                "bad-request",
                f"epochs[{index}].threads key {key!r} is not a thread id",
            ) from None
        deltas[tid] = counters_from_wire(
            values, what=f"epochs[{index}].threads[{key}]"
        )
    return Epoch(
        index=index,
        start_ns=start,
        end_ns=end,
        thread_deltas=deltas,
        stall_tid=stall_tid,
        during_gc=bool(payload.get("during_gc", False)),
    )


def epochs_from_wire(payload: Any) -> List[Epoch]:
    """Wire epoch array -> Epoch list."""
    if not isinstance(payload, list):
        raise ProtocolError("bad-request", "epochs must be an array")
    return [epoch_from_wire(entry, i) for i, entry in enumerate(payload)]


def record_to_wire(record: IntervalRecord) -> Dict[str, Any]:
    """IntervalRecord -> wire dict (aggregate counters only).

    The quantum-step logic consumes only the record's timing, frequency
    and cross-thread counter aggregate, so the wire form carries exactly
    those — not the per-thread map.
    """
    return {
        "index": record.index,
        "start_ns": record.start_ns,
        "end_ns": record.end_ns,
        "freq_ghz": record.freq_ghz,
        "counters": counters_to_wire(record.aggregate()),
    }


def record_from_wire(payload: Any) -> IntervalRecord:
    """Wire dict -> IntervalRecord equivalent for session stepping."""
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "record must be an object")
    index = payload.get("index")
    if not isinstance(index, int) or isinstance(index, bool):
        raise ProtocolError("bad-request", "record.index must be an int")
    start = require_number(payload.get("start_ns"), "record.start_ns")
    end = require_number(payload.get("end_ns"), "record.end_ns")
    if end < start:
        raise ProtocolError("bad-request", "record ends before it starts")
    freq = require_number(payload.get("freq_ghz"), "record.freq_ghz", minimum=1e-9)
    counters = counters_from_wire(payload.get("counters"), what="record.counters")
    return IntervalRecord(
        index=index,
        start_ns=start,
        end_ns=end,
        freq_ghz=freq,
        per_thread={0: counters},
    )


def target_freqs_from_wire(payload: Any, fallback: Sequence[float]) -> List[float]:
    """Validate an optional target-frequency array (default: ``fallback``)."""
    if payload is None:
        return list(fallback)
    if not isinstance(payload, list) or not payload:
        raise ProtocolError(
            "bad-request", "target_freqs_ghz must be a non-empty array"
        )
    return [
        require_number(value, f"target_freqs_ghz[{i}]", minimum=1e-9)
        for i, value in enumerate(payload)
    ]
