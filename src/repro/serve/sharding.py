"""Deterministic worker sharding for the multi-worker serve tier.

Three parties must agree on which worker owns what, without talking to
each other:

* the **frontend** routes ``govern`` frames so a session's entire stream
  lands on one worker (governor sessions are stateful and ordered);
* the **sharded client** pins a session to a worker before opening it,
  so it can speak to worker endpoints directly (no frontend hop);
* each **worker** mints session ids that carry its own identity, so any
  router can place a follow-up ``step``/``close`` statelessly.

The agreement is content-addressed, like the result caches: a session
*key* (any string the client chooses — tenant id, benchmark name, a
UUID) hashes to a worker index via SHA-256 (:func:`shard_for_key`), and
session *ids* minted by pooled workers embed the worker index as a
``@w<i>`` suffix (:func:`worker_for_session`). Python's builtin
``hash()`` is never used: it is salted per process, and two processes
that disagree about a session's home worker would split one governor
stream in half.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

#: Separator between a worker-local session id and its worker affinity tag.
AFFINITY_SEP = "@w"


def shard_for_key(key: str, n_workers: int) -> int:
    """Consistent worker index for an arbitrary string key.

    SHA-256-based so every process — client, frontend, worker — computes
    the same shard for the same key, on any platform, in any run.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_workers


def tag_session_id(local_id: str, worker_id: int) -> str:
    """Embed worker affinity in a session id (``g7`` -> ``g7@w2``)."""
    return f"{local_id}{AFFINITY_SEP}{worker_id}"


def worker_for_session(session_id: str, n_workers: int) -> int:
    """The worker that owns ``session_id``.

    Ids minted by pooled workers parse exactly (``...@w<i>``); anything
    else — including ids from a differently-sized pool — falls back to
    :func:`shard_for_key`, which keeps routing deterministic and lets the
    owning worker produce the authoritative ``unknown-session`` reply.
    """
    _, sep, suffix = session_id.rpartition(AFFINITY_SEP)
    if sep:
        try:
            worker_id = int(suffix)
        except ValueError:
            worker_id = -1
        if 0 <= worker_id < n_workers:
            return worker_id
    return shard_for_key(session_id, n_workers)


# ----------------------------------------------------------------------
# Worker endpoint naming
# ----------------------------------------------------------------------


def worker_socket_path(public_path: str, worker_id: int) -> str:
    """The private unix-socket path of one worker behind a public path."""
    return f"{public_path}.w{worker_id}"


def worker_socket_paths(public_path: str, n_workers: int) -> List[str]:
    """All private unix-socket paths behind a public path."""
    return [worker_socket_path(public_path, i) for i in range(n_workers)]


def parse_endpoint(endpoint: str) -> Tuple[str, Optional[str], Optional[int]]:
    """Split a ``unix:<path>`` / ``tcp:<host>:<port>`` endpoint string.

    Returns ``(kind, path_or_host, port)`` — the inverse of the endpoint
    strings :meth:`repro.serve.server.Server.start` reports.
    """
    if endpoint.startswith("unix:"):
        return "unix", endpoint[len("unix:"):], None
    if endpoint.startswith("tcp:"):
        host, _, port = endpoint[len("tcp:"):].rpartition(":")
        return "tcp", host, int(port)
    raise ValueError(f"unparseable endpoint {endpoint!r}")
