"""Server-side governor sessions (the ``govern`` endpoint's state).

Each session wraps one :class:`repro.energy.manager.EnergyManagerSession`
— the hold-off countdown, slack-banking accumulators and decision log all
live here, server-side, so a thin remote client stepping serialized
intervals obtains the byte-identical decision sequence an in-process
:class:`~repro.energy.manager.EnergyManager` run would have produced.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.arch.specs import MachineSpec
from repro.core.epochs import Epoch
from repro.core.predictors import get_predictor
from repro.energy.manager import (
    EnergyManagerSession,
    ManagerConfig,
    ManagerDecision,
)
from repro.serve.protocol import ProtocolError
from repro.serve.sharding import tag_session_id
from repro.sim.intervals import IntervalRecord

#: ManagerConfig fields settable over the wire.
_CONFIG_FIELDS = (
    "tolerable_slowdown",
    "hold_off",
    "min_busy_ns",
    "slack_banking",
    "objective",
)


def manager_config_from_wire(payload: Any) -> Tuple[ManagerConfig, str, bool]:
    """Parse a govern ``open`` config: (ManagerConfig, predictor, ctp)."""
    if payload is None:
        payload = {}
    if not isinstance(payload, Mapping):
        raise ProtocolError("bad-request", "config must be an object")
    unknown = set(payload) - set(_CONFIG_FIELDS) - {"predictor", "across_epoch_ctp"}
    if unknown:
        raise ProtocolError(
            "bad-request", f"unknown config field(s): {sorted(unknown)}"
        )
    kwargs = {key: payload[key] for key in _CONFIG_FIELDS if key in payload}
    predictor = payload.get("predictor", "DEP+BURST")
    if not isinstance(predictor, str):
        raise ProtocolError("bad-request", "config.predictor must be a string")
    ctp = payload.get("across_epoch_ctp", True)
    if not isinstance(ctp, bool):
        raise ProtocolError(
            "bad-request", "config.across_epoch_ctp must be a boolean"
        )
    try:
        config = ManagerConfig(**kwargs)
    except (ConfigError, TypeError) as exc:
        raise ProtocolError("bad-request", f"invalid config: {exc}") from exc
    return config, predictor, ctp


def decision_to_wire(decision: ManagerDecision) -> Dict[str, Any]:
    """ManagerDecision -> wire dict."""
    return {
        "interval_index": decision.interval_index,
        "base_freq_ghz": decision.base_freq_ghz,
        "chosen_freq_ghz": decision.chosen_freq_ghz,
        "predicted_slowdown": decision.predicted_slowdown,
    }


class SessionStore:
    """All live governor sessions of one server.

    In a worker pool, ``worker_id`` embeds this worker's identity in
    every minted session id (``g3@w1``) so frontends and sharded clients
    can route follow-up ``step``/``close`` frames statelessly — see
    :mod:`repro.serve.sharding`. Standalone servers keep the historical
    bare ``g<N>`` ids.
    """

    def __init__(
        self,
        spec: MachineSpec,
        max_sessions: int = 1024,
        worker_id: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.max_sessions = max_sessions
        self.worker_id = worker_id
        self._sessions: Dict[str, EnergyManagerSession] = {}
        self._next_id = 0
        self.opened = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def open(self, config_payload: Any) -> str:
        """Create a session from a wire config; return its id."""
        if len(self._sessions) >= self.max_sessions:
            raise ProtocolError(
                "overloaded",
                f"session limit reached ({self.max_sessions}); close sessions "
                "or raise --max-sessions",
            )
        config, predictor_name, ctp = manager_config_from_wire(config_payload)
        try:
            predictor = get_predictor(predictor_name, across_epoch_ctp=ctp)
        except ConfigError as exc:
            raise ProtocolError("bad-request", str(exc)) from exc
        session = EnergyManagerSession(self.spec, config, predictor=predictor)
        self._next_id += 1
        session_id = f"g{self._next_id}"
        if self.worker_id is not None:
            session_id = tag_session_id(session_id, self.worker_id)
        self._sessions[session_id] = session
        self.opened += 1
        return session_id

    def get(self, session_id: Any) -> EnergyManagerSession:
        """Look a session up (``unknown-session`` if absent)."""
        session = self._sessions.get(session_id) if isinstance(session_id, str) else None
        if session is None:
            raise ProtocolError(
                "unknown-session", f"no open session {session_id!r}"
            )
        return session

    def step(
        self,
        session_id: Any,
        record: IntervalRecord,
        epochs: Sequence[Epoch],
    ) -> Tuple[Optional[float], Optional[ManagerDecision]]:
        """Advance one quantum; return (frequency-or-None, new decision)."""
        session = self.get(session_id)
        before = len(session.decisions)
        freq = session.step(record, epochs)
        decision = (
            session.decisions[-1] if len(session.decisions) > before else None
        )
        return freq, decision

    def close(self, session_id: Any) -> EnergyManagerSession:
        """Tear a session down; return it for a final summary."""
        session = self.get(session_id)
        del self._sessions[session_id]
        return session
