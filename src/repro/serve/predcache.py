"""Cross-worker shared prediction cache for the serve tier.

Prediction is pure: the reply to a ``predict`` request is a function of
the request payload, the machine spec and the prediction-kernel
revision. That makes replies cacheable across *processes* — a governor
fleet asking the same question twice (or two workers asked the same
question once each) should pay the vectorized evaluation exactly once.

Keys follow the repo's content-addressing discipline
(:func:`repro.common.store.stable_hash`): a SHA-256 over the wire-form
payload fields plus the spec fingerprint, the sweep-kernel
``KERNEL_VERSION`` (the PR 5 prediction fingerprint — a kernel revision
must never replay another revision's results) and this module's schema
version.

Values are the **pre-encoded JSON result fragments** the server would
have written, not re-parsed objects: a cache hit splices the cold
compute's exact bytes into the reply envelope, so hits are repr-exact
equal to cold computes by construction — byte-identical, not just
value-equal. The fast path also skips epoch revalidation: a stored
fragment proves the payload it is keyed by already parsed cleanly once.

The backing store is a :class:`repro.common.store.TieredStore` — a
per-worker in-process LRU over an optional file-backed shared directory
all pool workers point at.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.store import (
    FileStore,
    MemoryLRU,
    TieredStore,
    stable_hash,
)

#: Bump when the predict reply schema or the keyed fields change: every
#: existing entry becomes unreachable instead of replaying a stale shape.
PREDICT_CACHE_SCHEMA = 1

_ID_TOKEN = b',"id":'


def split_raw_line(line: bytes) -> Optional[Tuple[bytes, bytes]]:
    """Split a wire line into ``(id-stripped prefix, id digits)``.

    Matches only frames whose *last* member is an unsigned-integer
    ``"id"``: the line must end with ``,"id":<digits>}\\n``. In valid
    JSON that suffix can only be the root object's trailing member —
    a nested object would be followed by more closing brackets, a key
    merely ending in ``id`` breaks the ``,"`` anchor, and a string
    value cannot end in bare digits before the final brace. So two
    lines with equal prefixes are the *same request* (modulo id), which
    is what makes the prefix safe to key a byte-exact reply memo by.

    Anything else (id elsewhere, non-integer id, leading zeros — not
    valid JSON — or unusual whitespace) returns None and takes the
    ordinary parse path; the memo can only miss, never mis-hit.
    """
    if not line.endswith(b"}\n"):
        return None
    i = line.rfind(_ID_TOKEN)
    if i <= 0:
        return None
    digits = line[i + len(_ID_TOKEN):-2]
    if not digits.isdigit():
        return None
    if digits[:1] == b"0" and len(digits) > 1:
        return None
    return line[:i] + b"}", digits


class RawLineMemo:
    """LRU of id-stripped request lines -> pre-encoded result fragments.

    The L0 tier of the prediction cache: a repeat of a byte-identical
    predict request is answered without touching ``json`` at all — no
    decode of the frame, no canonical dump for the semantic key. Entries
    are only ever populated from a reply that went through the semantic
    cache, so a memo hit replays exactly the bytes a cold compute wrote.
    Keys and values are bytes; per-process only (never shared on disk).
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("raw memo needs max_entries >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[bytes, bytes]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, prefix: bytes) -> Optional[bytes]:
        fragment = self._entries.get(prefix)
        if fragment is None:
            self.misses += 1
            return None
        self._entries.move_to_end(prefix)
        self.hits += 1
        return fragment

    def put(self, prefix: bytes, fragment: bytes) -> None:
        self._entries[prefix] = fragment
        self._entries.move_to_end(prefix)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


def kernel_fingerprint() -> Dict[str, Any]:
    """The prediction-engine identity that participates in every key."""
    from repro.core.sweep import KERNEL_VERSION

    return {"engine": "vectorized", "kernel_version": KERNEL_VERSION}


def spec_fingerprint(spec: Any) -> str:
    """Content hash of the machine spec predictions are evaluated under."""
    return stable_hash(spec)


class PredictionCache:
    """Tiered (LRU + optional shared-file) store of predict result fragments."""

    def __init__(
        self,
        spec: Any,
        shared_dir: Optional[str] = None,
        max_memory_entries: int = 4096,
    ) -> None:
        tiers: list = []
        if max_memory_entries > 0:
            tiers.append(MemoryLRU(max_entries=max_memory_entries))
        if shared_dir is not None:
            tiers.append(FileStore(shared_dir, prefix="predict"))
        if not tiers:
            raise ValueError(
                "prediction cache needs a memory tier and/or a shared_dir"
            )
        self.store = TieredStore(tiers)
        # The raw-line memo rides on the memory budget: a file-tier-only
        # cache (max_memory_entries=0) keeps nothing in process, memo
        # included.
        self.raw: Optional[RawLineMemo] = (
            RawLineMemo(max_memory_entries) if max_memory_entries > 0 else None
        )
        self._identity = {
            "schema": PREDICT_CACHE_SCHEMA,
            "kernel": kernel_fingerprint(),
            "spec": spec_fingerprint(spec),
        }

    # ------------------------------------------------------------------

    def key_for(self, frame: Mapping[str, Any]) -> Optional[str]:
        """Content key of one predict request frame (None = uncacheable).

        Hashes the raw wire values — *before* validation — so the lookup
        can run ahead of epoch parsing on the hot path. Conservative by
        construction: two frames that differ at all (``1`` vs ``1.0``,
        field order aside) key differently, which can only cause a miss,
        never a wrong hit. Frames whose payload fields are not plain JSON
        data (and would fail validation anyway) return ``None``.

        The hash is ``json.dumps(..., sort_keys=True)`` fed to SHA-256
        directly rather than :func:`repro.common.store.stable_hash`:
        frame values just came out of ``json.loads``, so the recursive
        ``canonical()`` pass would be a (surprisingly expensive) identity
        transform — the C encoder computes the same canonical text in a
        fraction of the time, and non-JSON values raise the same
        ``TypeError``.
        """
        try:
            payload = json.dumps(
                {
                    "identity": self._identity,
                    "predictor": frame.get("predictor", "DEP+BURST"),
                    "across_epoch_ctp": frame.get("across_epoch_ctp", True),
                    "base_freq_ghz": frame.get("base_freq_ghz"),
                    "target_freqs_ghz": frame.get("target_freqs_ghz"),
                    "epochs": frame.get("epochs"),
                },
                sort_keys=True,
                separators=(",", ":"),
                allow_nan=True,
            )
        except (TypeError, ValueError):
            return None
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def lookup(self, key: str) -> Optional[str]:
        """The stored result fragment for ``key``, or None.

        Fragments from the file tier may have been corrupted after the
        envelope was written; a fragment that is not a JSON object text
        is rejected (miss) rather than spliced into a reply.
        """
        fragment = self.store.get(key)
        if fragment is None:
            return None
        text = fragment.strip()
        if not (text.startswith("{") and text.endswith("}")):
            return None
        return fragment

    def record(self, key: str, result: Mapping[str, Any]) -> str:
        """Serialize ``result`` once, store the fragment, and return it."""
        fragment = json.dumps(result, separators=(",", ":"), allow_nan=False)
        self.store.put(key, fragment)
        return fragment

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/store counters: overall plus per tier."""
        overall = self.store.stats.as_dict()
        overall["tiers"] = self.store.tier_stats()
        if self.raw is not None:
            overall["raw_memo"] = self.raw.stats()
        return overall
