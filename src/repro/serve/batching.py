"""Request coalescing for the ``predict`` hot path.

Concurrent predict requests are gathered into one
:func:`repro.core.vectorized.evaluate_predict_jobs` call under a
max-batch/max-delay window: the first job to arrive arms a flush timer
(``max_delay_s``); hitting ``max_batch`` pending jobs flushes
immediately. Batch results are bit-identical to per-request scalar
evaluation (the kernel's contract), so batching is purely a throughput
knob — never a semantics knob.

A failing job must not sink its batch: if the vectorized call raises,
the batch is re-evaluated job by job on the scalar path and only the
poisoned job(s) receive the exception.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro.core.vectorized import (
    PredictJob,
    evaluate_predict_jobs,
    scalar_results,
)
from repro.serve.metrics import MetricsRegistry


class PredictBatcher:
    """Coalesces predict jobs; owner of the max-batch/max-delay window."""

    def __init__(
        self,
        max_batch: int = 64,
        max_delay_s: float = 0.002,
        metrics: Optional[MetricsRegistry] = None,
        evaluate=evaluate_predict_jobs,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.metrics = metrics
        self.evaluate = evaluate
        self._pending: List[Tuple[PredictJob, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None

    @property
    def pending(self) -> int:
        """Jobs currently waiting for the window to close."""
        return len(self._pending)

    async def submit(self, job: PredictJob) -> List[float]:
        """Queue one job; resolves when its batch has been evaluated."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((job, future))
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay_s, self.flush)
        return await future

    def flush(self) -> None:
        """Evaluate everything pending right now (idempotent)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        if not pending:
            return
        if self.metrics is not None:
            self.metrics.batch_sizes.observe(float(len(pending)))
        jobs = [job for job, _ in pending]
        try:
            results = self.evaluate(jobs)
        except Exception:
            self._flush_scalar(pending)
            return
        for (_, future), result in zip(pending, results):
            if not future.done():
                future.set_result(result)

    def _flush_scalar(
        self, pending: List[Tuple[PredictJob, asyncio.Future]]
    ) -> None:
        """Isolate a poisoned batch: evaluate per job, fail only the bad ones."""
        for job, future in pending:
            if future.done():
                continue
            try:
                result = scalar_results(job)
            except Exception as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)
