"""Accept-and-hand-off frontend for pooled serve workers.

Unix sockets cannot be shared the way ``SO_REUSEPORT`` shares a TCP
port, so a pool listening on a unix path needs one tiny process in front:
the frontend binds the *public* endpoints, the workers bind private
per-worker sockets (:func:`repro.serve.sharding.worker_socket_path`), and
the frontend relays NDJSON frames between them.

Routing, per the sharding contract:

* every client connection gets a **sticky** worker (round-robin at
  accept) — stateless kinds (``predict``/``health``/``stats``) all go
  there, which preserves batching affinity exactly like a direct
  connection would;
* ``govern`` frames are routed per-frame so one session's whole stream
  lands on its owning worker: ``open`` goes to
  :func:`~repro.serve.sharding.shard_for_key` of the frame's optional
  ``session_key`` (else the sticky worker); ``step``/``close`` go to
  :func:`~repro.serve.sharding.worker_for_session` of the session id.

The relay is full-duplex: one upstream connection per (client, worker)
pair, with a pump task copying replies back as they complete. Reply
*bytes* pass through untouched — the frontend never re-encodes frames,
so byte-identical parity with a direct worker connection holds through
the hop. Clients correlate replies by ``id`` exactly as they do against
a single server (predict replies may already overtake stats replies
there; the frontend adds no new reordering beyond merging per-worker
streams).

A dead worker tears down the client connections it served (mid-stream
state is unrecoverable); the client's reconnect policy takes it from
there.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import threading
from typing import Dict, List, Optional

from repro.serve import protocol
from repro.serve.sharding import shard_for_key, worker_for_session

log = logging.getLogger("repro.serve.frontend")

#: Cheap pre-filter: only frames containing this substring are decoded
#: for routing. False positives (the token inside a string value) cost
#: one json.loads; false negatives are impossible for valid govern
#: frames (JSON strings cannot contain a raw ``"`` without escaping).
_GOVERN_TOKEN = b'"govern"'


class _Upstream:
    """One frontend->worker connection serving one client connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pump: asyncio.Task,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pump = pump

    async def close(self) -> None:
        self.pump.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self.pump
        self.writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self.writer.wait_closed()


class Frontend:
    """The routing proxy (construct, ``await start()``, ``await stop()``)."""

    def __init__(
        self,
        worker_paths: List[str],
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        if not worker_paths:
            raise ValueError("frontend needs at least one worker endpoint")
        if socket_path is None and host is None:
            raise ValueError("frontend needs a socket_path and/or a host")
        self.worker_paths = list(worker_paths)
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.connections_opened = 0
        self._next_sticky = 0
        self._servers: List[asyncio.AbstractServer] = []
        self._conn_tasks: set = set()

    @property
    def n_workers(self) -> int:
        return len(self.worker_paths)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> List[str]:
        """Bind the public endpoints; return their addresses."""
        endpoints: List[str] = []
        if self.socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.socket_path,
                limit=self.max_frame_bytes,
            )
            self._servers.append(server)
            endpoints.append(f"unix:{self.socket_path}")
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=self.max_frame_bytes,
            )
            self._servers.append(server)
            for sock in server.sockets:
                host, port = sock.getsockname()[:2]
                endpoints.append(f"tcp:{host}:{port}")
        log.info("repro-serve frontend routing %s -> %d workers",
                 ", ".join(endpoints), self.n_workers)
        return endpoints

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound public TCP port (after start), if TCP is enabled."""
        for server in self._servers:
            for sock in server.sockets:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[1]
        return None

    async def stop(self) -> None:
        """Close the public listeners and all relayed connections."""
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Relay
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_opened += 1
        sticky = self._next_sticky % self.n_workers
        self._next_sticky += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        upstreams: Dict[int, _Upstream] = {}
        try:
            await self._relay_loop(reader, writer, write_lock, upstreams, sticky)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for upstream in upstreams.values():
                await upstream.close()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            if task is not None:
                self._conn_tasks.discard(task)

    async def _relay_loop(
        self, reader, writer, write_lock, upstreams, sticky
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Oversized frame: mirror the worker's own bad-frame
                # behaviour — reply and hang up, the stream is lost.
                await self._send(
                    writer, write_lock,
                    protocol.encode_frame(protocol.error_reply(
                        None, "bad-frame",
                        f"frame exceeds {self.max_frame_bytes} bytes",
                    )),
                )
                return
            if not line:
                return  # clean EOF
            if not line.endswith(b"\n"):
                await self._send(
                    writer, write_lock,
                    protocol.encode_frame(protocol.error_reply(
                        None, "bad-frame",
                        "truncated frame (EOF before newline)",
                    )),
                )
                return
            worker_id = self._route(line, sticky)
            upstream = upstreams.get(worker_id)
            if upstream is None:
                upstream = await self._connect_upstream(
                    worker_id, writer, write_lock
                )
                upstreams[worker_id] = upstream
            upstream.writer.write(line)
            await upstream.writer.drain()

    def _route(self, line: bytes, sticky: int) -> int:
        """Pick the worker one frame belongs to."""
        if _GOVERN_TOKEN not in line:
            return sticky
        try:
            frame = json.loads(line)
        except ValueError:
            return sticky  # the worker produces the authoritative error
        if not isinstance(frame, dict) or frame.get("kind") != "govern":
            return sticky
        op = frame.get("op")
        if op == "open":
            session_key = frame.get("session_key")
            if isinstance(session_key, str) and session_key:
                return shard_for_key(session_key, self.n_workers)
            return sticky
        session = frame.get("session")
        if isinstance(session, str):
            return worker_for_session(session, self.n_workers)
        return sticky

    async def _connect_upstream(
        self, worker_id: int, writer, write_lock
    ) -> _Upstream:
        up_reader, up_writer = await asyncio.open_unix_connection(
            self.worker_paths[worker_id], limit=self.max_frame_bytes
        )
        pump = asyncio.get_running_loop().create_task(
            self._pump_replies(up_reader, writer, write_lock)
        )
        return _Upstream(up_reader, up_writer, pump)

    async def _pump_replies(self, up_reader, writer, write_lock) -> None:
        """Copy one worker's reply stream back to the client, verbatim."""
        while True:
            line = await up_reader.readline()
            if not line or not line.endswith(b"\n"):
                # Worker died (or truncated a reply): the client's view of
                # its sessions there is unrecoverable — drop the client
                # connection so its reconnect policy can engage.
                writer.close()
                return
            await self._send(writer, write_lock, line)

    @staticmethod
    async def _send(writer, write_lock, data: bytes) -> None:
        async with write_lock:
            writer.write(data)
            try:
                await writer.drain()
            except ConnectionError:
                pass


class BackgroundFrontend:
    """A :class:`Frontend` running on its own event-loop thread.

    Mirrors :class:`repro.serve.background.BackgroundServer` so the
    synchronous pool driver can stand the routing tier up in-process.
    """

    def __init__(self, frontend: Frontend) -> None:
        self.frontend = frontend
        self.endpoints: List[str] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> List[str]:
        if self._loop is not None:
            raise RuntimeError("frontend already started")
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=self._run_loop, args=(loop,),
            name="repro-serve-frontend", daemon=True,
        )
        thread.start()
        self._loop, self._thread = loop, thread
        future = asyncio.run_coroutine_threadsafe(self.frontend.start(), loop)
        try:
            self.endpoints = future.result(timeout=30)
        except Exception:
            self.stop()
            raise
        return self.endpoints

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.frontend.stop(), loop
            ).result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=30)
            loop.close()

    @property
    def tcp_port(self) -> Optional[int]:
        return self.frontend.tcp_port

    def __enter__(self) -> "BackgroundFrontend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @staticmethod
    def _run_loop(loop: asyncio.AbstractEventLoop) -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
