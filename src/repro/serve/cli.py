"""``repro-serve``: run the online prediction service.

Examples::

    repro-serve --socket /tmp/repro.sock
    repro-serve --host 127.0.0.1 --port 7091 --max-batch 128 --max-delay-ms 1
    repro-serve --socket /tmp/repro.sock --log-interval 10
    repro-serve --socket /tmp/repro.sock --workers 4 --shared-predict-cache

With ``--workers N`` (N > 1) the process becomes a pool driver: it
spawns N worker processes (:mod:`repro.serve.pool`), shares the TCP
port via ``SO_REUSEPORT`` or fronts the unix socket with a routing
frontend (:mod:`repro.serve.frontend`), and aggregates fleet metrics so
``stats`` against any endpoint reports the whole pool.

The process runs until SIGINT/SIGTERM, then shuts down cleanly (closing
listeners, live connections and — in pool mode — every worker).
``--profile`` wraps the whole run in cProfile like the other repro CLIs.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging
import os
import signal
import sys
import threading

from repro.common.errors import ConfigError
from repro.common.profiling import UNSET, resolve_profile_path, run_maybe_profiled
from repro.serve.frontend import BackgroundFrontend, Frontend
from repro.serve.pool import WorkerPool
from repro.serve.server import ServeConfig, Server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve DVFS predictions and governor decisions "
        "(newline-delimited JSON over unix socket and/or TCP).",
    )
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="unix socket to listen on")
    parser.add_argument("--host", default=None,
                        help="TCP host to listen on (e.g. 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: ephemeral)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="max predict requests per vectorized batch")
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="max milliseconds a predict request waits for "
                        "its batch window to fill")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="per-connection in-flight predict cap; excess "
                        "is shed with 'overloaded' replies")
    parser.add_argument("--max-frame-kb", type=int, default=1024,
                        help="max request frame size in KiB")
    parser.add_argument("--max-sessions", type=int, default=1024,
                        help="max simultaneously open governor sessions")
    parser.add_argument("--log-interval", type=float, default=0.0,
                        metavar="SECONDS",
                        help="emit a structured stats log line every N "
                        "seconds (0 disables)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = in-process "
                        "server; >1 spawns a pool sharing the listener)")
    parser.add_argument("--fleet-dir", default=None, metavar="DIR",
                        help="shared directory for cross-worker metrics "
                        "snapshots (pool mode provisions one when unset)")
    parser.add_argument("--predict-cache-mem", type=int, default=0,
                        metavar="N",
                        help="entries of the in-process prediction-cache "
                        "LRU (0 disables the memory tier)")
    parser.add_argument("--predict-cache-dir", default=None, metavar="DIR",
                        help="shared directory of the cross-worker "
                        "prediction cache (file tier)")
    parser.add_argument("--shared-predict-cache", action="store_true",
                        help="pool mode: provision a pool-owned shared "
                        "prediction-cache directory (implies the file tier)")
    parser.add_argument("--profile", nargs="?", default=UNSET, metavar="PSTATS",
                        help="profile the run with cProfile; optional dump "
                        "path (default repro-serve.pstats; REPRO_PROFILE=1 "
                        "also enables)")
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Translate CLI flags into a ServeConfig."""
    if args.workers < 1:
        raise ConfigError("--workers must be >= 1")
    return ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        max_frame_bytes=args.max_frame_kb * 1024,
        queue_depth=args.queue_depth,
        max_sessions=args.max_sessions,
        log_interval_s=args.log_interval,
        n_workers=args.workers,
        fleet_dir=args.fleet_dir,
        predict_cache_mem=args.predict_cache_mem,
        predict_cache_dir=args.predict_cache_dir,
    )


async def _run(config: ServeConfig) -> int:
    server = Server(config)
    endpoints = await server.start()
    print(f"repro-serve ready on {', '.join(endpoints)}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        await server.stop()
        if config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(config.socket_path)
    return 0


def _run_pool(config: ServeConfig, n_workers: int, shared_cache: bool) -> int:
    """Drive a worker pool (and, in unix mode, its routing frontend)."""
    pool = WorkerPool(config, n_workers, shared_cache=shared_cache)
    frontend: "BackgroundFrontend | None" = None
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    pool.start()
    try:
        if pool.unix_mode:
            frontend = BackgroundFrontend(Frontend(
                pool.worker_paths(),
                socket_path=config.socket_path,
                host=config.host,
                port=config.port,
                max_frame_bytes=config.max_frame_bytes,
            ))
            endpoints = frontend.start()
        else:
            endpoints = [f"tcp:{pool.base.host}:{pool.base.port}"]
        print(
            f"repro-serve ready on {', '.join(endpoints)} "
            f"({n_workers} workers)",
            flush=True,
        )
        stop.wait()
    finally:
        if frontend is not None:
            frontend.stop()
        pool.stop()
        if config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(config.socket_path)
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    try:
        config = config_from_args(args)
    except ConfigError as exc:
        parser.error(str(exc))
    profile_path = resolve_profile_path(args.profile, "repro-serve.pstats")
    if args.workers > 1:
        return run_maybe_profiled(
            lambda: _run_pool(config, args.workers, args.shared_predict_cache),
            profile_path,
        )
    return run_maybe_profiled(lambda: asyncio.run(_run(config)), profile_path)


if __name__ == "__main__":
    raise SystemExit(main())
