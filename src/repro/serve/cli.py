"""``repro-serve``: run the online prediction service.

Examples::

    repro-serve --socket /tmp/repro.sock
    repro-serve --host 127.0.0.1 --port 7091 --max-batch 128 --max-delay-ms 1
    repro-serve --socket /tmp/repro.sock --log-interval 10

The process runs until SIGINT/SIGTERM, then shuts down cleanly (closing
listeners and live connections). ``--profile`` wraps the whole run in
cProfile like the other repro CLIs.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging
import os
import signal
import sys

from repro.common.errors import ConfigError
from repro.common.profiling import UNSET, resolve_profile_path, run_maybe_profiled
from repro.serve.server import ServeConfig, Server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve DVFS predictions and governor decisions "
        "(newline-delimited JSON over unix socket and/or TCP).",
    )
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="unix socket to listen on")
    parser.add_argument("--host", default=None,
                        help="TCP host to listen on (e.g. 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: ephemeral)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="max predict requests per vectorized batch")
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="max milliseconds a predict request waits for "
                        "its batch window to fill")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="per-connection in-flight predict cap; excess "
                        "is shed with 'overloaded' replies")
    parser.add_argument("--max-frame-kb", type=int, default=1024,
                        help="max request frame size in KiB")
    parser.add_argument("--max-sessions", type=int, default=1024,
                        help="max simultaneously open governor sessions")
    parser.add_argument("--log-interval", type=float, default=0.0,
                        metavar="SECONDS",
                        help="emit a structured stats log line every N "
                        "seconds (0 disables)")
    parser.add_argument("--profile", nargs="?", default=UNSET, metavar="PSTATS",
                        help="profile the run with cProfile; optional dump "
                        "path (default repro-serve.pstats; REPRO_PROFILE=1 "
                        "also enables)")
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Translate CLI flags into a ServeConfig."""
    return ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        max_frame_bytes=args.max_frame_kb * 1024,
        queue_depth=args.queue_depth,
        max_sessions=args.max_sessions,
        log_interval_s=args.log_interval,
    )


async def _run(config: ServeConfig) -> int:
    server = Server(config)
    endpoints = await server.start()
    print(f"repro-serve ready on {', '.join(endpoints)}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        await server.stop()
        if config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(config.socket_path)
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    try:
        config = config_from_args(args)
    except ConfigError as exc:
        parser.error(str(exc))
    profile_path = resolve_profile_path(args.profile, "repro-serve.pstats")
    return run_maybe_profiled(lambda: asyncio.run(_run(config)), profile_path)


if __name__ == "__main__":
    raise SystemExit(main())
