"""Observability surface of the prediction service.

Plain counters and fixed-bucket histograms — no third-party client
library, no locks (the server is single-threaded asyncio; the bench tool
reads snapshots over the wire). Latencies land in logarithmic buckets so
p50/p99 estimates stay meaningful from microseconds to seconds, and batch
sizes in linear buckets up to the configured maximum.

Everything is exported two ways:

* the ``stats`` request returns :meth:`MetricsRegistry.snapshot`;
* the server periodically emits one structured log line per interval
  (:meth:`MetricsRegistry.log_line`) with the deltas since the last one.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``bounds`` are inclusive upper bounds of each bucket; one overflow
    bucket is appended. Quantiles are estimated as the upper bound of the
    bucket containing the requested rank (the overflow bucket reports the
    largest observed value).
    """

    def __init__(self, bounds: List[float]) -> None:
        self.bounds = list(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 if empty)."""
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump: bounds, counts, total/sum/max, p50/p99."""
        return {
            "bounds": self.bounds,
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


def latency_histogram() -> Histogram:
    """Log-spaced latency buckets from 50 us to ~13 s (seconds)."""
    bounds, bound = [], 50e-6
    while bound < 16.0:
        bounds.append(bound)
        bound *= 2.0
    return Histogram(bounds)


def batch_histogram(max_batch: int) -> Histogram:
    """Linear batch-size buckets 1..max_batch."""
    return Histogram([float(i) for i in range(1, max_batch + 1)])


class EndpointMetrics:
    """Requests, errors and latency of one request kind."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors: Dict[str, int] = {}
        self.latency = latency_histogram()

    def observe(self, seconds: float, error_code: Optional[str] = None) -> None:
        """Record one handled request (and its error code, if any)."""
        self.requests += 1
        self.latency.observe(seconds)
        if error_code is not None:
            self.errors[error_code] = self.errors.get(error_code, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": dict(self.errors),
            "latency_s": self.latency.snapshot(),
        }


class MetricsRegistry:
    """All metrics of one server instance."""

    def __init__(self, max_batch: int) -> None:
        self.started_at = time.time()
        self.endpoints: Dict[str, EndpointMetrics] = {}
        self.batch_sizes = batch_histogram(max_batch)
        self.connections_opened = 0
        self.connections_active = 0
        self.frames_rejected = 0
        self.overloaded = 0
        self.sessions_opened = 0
        self.sessions_active = 0
        self._last_log = dict(self._totals(), at=self.started_at)

    def endpoint(self, kind: str) -> EndpointMetrics:
        """Metrics bucket of one request kind (created on first use)."""
        metrics = self.endpoints.get(kind)
        if metrics is None:
            metrics = EndpointMetrics()
            self.endpoints[kind] = metrics
        return metrics

    def _totals(self) -> Dict[str, float]:
        return {
            "requests": sum(e.requests for e in self.endpoints.values()),
            "errors": sum(
                sum(e.errors.values()) for e in self.endpoints.values()
            ),
            "overloaded": self.overloaded,
            "batches": self.batch_sizes.total,
        }

    def snapshot(self) -> Dict[str, object]:
        """The ``stats`` reply body."""
        return {
            "uptime_s": time.time() - self.started_at,
            "connections": {
                "opened": self.connections_opened,
                "active": self.connections_active,
            },
            "sessions": {
                "opened": self.sessions_opened,
                "active": self.sessions_active,
            },
            "frames_rejected": self.frames_rejected,
            "overloaded": self.overloaded,
            "batch_size": self.batch_sizes.snapshot(),
            "endpoints": {
                kind: metrics.snapshot()
                for kind, metrics in sorted(self.endpoints.items())
            },
        }

    def log_line(self) -> str:
        """One structured (JSON) log line with deltas since the last one."""
        now = time.time()
        totals = self._totals()
        window = {
            key: totals[key] - self._last_log[key] for key in totals
        }
        window["interval_s"] = round(now - self._last_log["at"], 3)
        window["connections_active"] = self.connections_active
        window["sessions_active"] = self.sessions_active
        self._last_log = dict(totals, at=now)
        return "repro-serve stats " + json.dumps(window, sort_keys=True)
