"""Observability surface of the prediction service.

Plain counters and fixed-bucket histograms — no third-party client
library, no locks (the server is single-threaded asyncio; the bench tool
reads snapshots over the wire). Latencies land in logarithmic buckets so
p50/p99 estimates stay meaningful from microseconds to seconds, and batch
sizes in linear buckets up to the configured maximum.

Everything is exported two ways:

* the ``stats`` request returns :meth:`MetricsRegistry.snapshot`;
* the server periodically emits one structured log line per interval
  (:meth:`MetricsRegistry.log_line`) with the deltas since the last one.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``bounds`` are inclusive upper bounds of each bucket; one overflow
    bucket is appended. Quantiles are estimated as the upper bound of the
    bucket containing the requested rank (the overflow bucket reports the
    largest observed value).
    """

    def __init__(self, bounds: List[float]) -> None:
        self.bounds = list(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 if empty)."""
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump: bounds, counts, total/sum/max, p50/p99."""
        return {
            "bounds": self.bounds,
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from its snapshot (inverse of snapshot())."""
        histogram = cls([float(b) for b in snapshot["bounds"]])
        counts = [int(c) for c in snapshot["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError("snapshot counts do not match bounds")
        histogram.counts = counts
        histogram.total = int(snapshot["count"])
        histogram.sum = float(snapshot["sum"])
        histogram.max = float(snapshot["max"])
        return histogram

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another instance's snapshot into this histogram.

        Requires identical bucket bounds (all pool workers inherit the
        same config); quantiles of the merged population come out of
        :meth:`quantile` as usual.
        """
        other = Histogram.from_snapshot(snapshot)
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.sum += other.sum
        self.max = max(self.max, other.max)


def latency_histogram() -> Histogram:
    """Log-spaced latency buckets from 50 us to ~13 s (seconds)."""
    bounds, bound = [], 50e-6
    while bound < 16.0:
        bounds.append(bound)
        bound *= 2.0
    return Histogram(bounds)


def batch_histogram(max_batch: int) -> Histogram:
    """Linear batch-size buckets 1..max_batch."""
    return Histogram([float(i) for i in range(1, max_batch + 1)])


class EndpointMetrics:
    """Requests, errors and latency of one request kind."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors: Dict[str, int] = {}
        self.latency = latency_histogram()

    def observe(self, seconds: float, error_code: Optional[str] = None) -> None:
        """Record one handled request (and its error code, if any)."""
        self.requests += 1
        self.latency.observe(seconds)
        if error_code is not None:
            self.errors[error_code] = self.errors.get(error_code, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": dict(self.errors),
            "latency_s": self.latency.snapshot(),
        }


class MetricsRegistry:
    """All metrics of one server instance."""

    def __init__(self, max_batch: int) -> None:
        self.started_at = time.time()
        self.endpoints: Dict[str, EndpointMetrics] = {}
        self.batch_sizes = batch_histogram(max_batch)
        self.connections_opened = 0
        self.connections_active = 0
        self.frames_rejected = 0
        self.overloaded = 0
        self.sessions_opened = 0
        self.sessions_active = 0
        self.predict_cache_hits = 0
        self.predict_cache_misses = 0
        self.predict_cache_stores = 0
        self._last_log = dict(self._totals(), at=self.started_at)

    def endpoint(self, kind: str) -> EndpointMetrics:
        """Metrics bucket of one request kind (created on first use)."""
        metrics = self.endpoints.get(kind)
        if metrics is None:
            metrics = EndpointMetrics()
            self.endpoints[kind] = metrics
        return metrics

    def _totals(self) -> Dict[str, float]:
        return {
            "requests": sum(e.requests for e in self.endpoints.values()),
            "errors": sum(
                sum(e.errors.values()) for e in self.endpoints.values()
            ),
            "overloaded": self.overloaded,
            "batches": self.batch_sizes.total,
        }

    def snapshot(self) -> Dict[str, object]:
        """The ``stats`` reply body."""
        return {
            "uptime_s": time.time() - self.started_at,
            "connections": {
                "opened": self.connections_opened,
                "active": self.connections_active,
            },
            "sessions": {
                "opened": self.sessions_opened,
                "active": self.sessions_active,
            },
            "frames_rejected": self.frames_rejected,
            "overloaded": self.overloaded,
            "predict_cache": {
                "hits": self.predict_cache_hits,
                "misses": self.predict_cache_misses,
                "stores": self.predict_cache_stores,
            },
            "batch_size": self.batch_sizes.snapshot(),
            "endpoints": {
                kind: metrics.snapshot()
                for kind, metrics in sorted(self.endpoints.items())
            },
        }

    def log_line(self) -> str:
        """One structured (JSON) log line with deltas since the last one."""
        now = time.time()
        totals = self._totals()
        window = {
            key: totals[key] - self._last_log[key] for key in totals
        }
        window["interval_s"] = round(now - self._last_log["at"], 3)
        window["connections_active"] = self.connections_active
        window["sessions_active"] = self.sessions_active
        self._last_log = dict(totals, at=now)
        return "repro-serve stats " + json.dumps(window, sort_keys=True)


# ----------------------------------------------------------------------
# Fleet aggregation (multi-worker pools)
# ----------------------------------------------------------------------

#: Scalar counters summed across workers when merging snapshots.
_SUMMED_COUNTERS = ("frames_rejected", "overloaded")


def _merge_endpoint(
    merged: Dict[str, Any], snapshot: Mapping[str, Any]
) -> Dict[str, Any]:
    merged["requests"] += int(snapshot.get("requests", 0))
    for code, count in (snapshot.get("errors") or {}).items():
        merged["errors"][code] = merged["errors"].get(code, 0) + int(count)
    merged["_latency"].merge(snapshot["latency_s"])
    return merged


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Fold per-worker ``stats`` snapshots into one fleet-wide snapshot.

    Counters sum; histograms merge bucket-wise (quantiles recomputed over
    the merged population); ``uptime_s`` reports the oldest worker. The
    result has the same shape as one worker's snapshot plus a
    ``workers_reporting`` count, so dashboards can read either
    interchangeably.
    """
    snapshots = list(snapshots)
    merged: Dict[str, Any] = {
        "workers_reporting": len(snapshots),
        "uptime_s": 0.0,
        "connections": {"opened": 0, "active": 0},
        "sessions": {"opened": 0, "active": 0},
        "frames_rejected": 0,
        "overloaded": 0,
        "predict_cache": {"hits": 0, "misses": 0, "stores": 0},
        "endpoints": {},
    }
    batch: Optional[Histogram] = None
    endpoint_merged: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        merged["uptime_s"] = max(
            merged["uptime_s"], float(snapshot.get("uptime_s", 0.0))
        )
        for group in ("connections", "sessions"):
            for field in ("opened", "active"):
                merged[group][field] += int(
                    (snapshot.get(group) or {}).get(field, 0)
                )
        for counter in _SUMMED_COUNTERS:
            merged[counter] += int(snapshot.get(counter, 0))
        for field in ("hits", "misses", "stores"):
            merged["predict_cache"][field] += int(
                (snapshot.get("predict_cache") or {}).get(field, 0)
            )
        if "batch_size" in snapshot:
            if batch is None:
                batch = Histogram.from_snapshot(snapshot["batch_size"])
            else:
                batch.merge(snapshot["batch_size"])
        for kind, endpoint in (snapshot.get("endpoints") or {}).items():
            bucket = endpoint_merged.get(kind)
            if bucket is None:
                bucket = {
                    "requests": 0,
                    "errors": {},
                    "_latency": Histogram.from_snapshot(
                        endpoint["latency_s"]
                    ),
                }
                # Zero the seed histogram: the loop below re-merges it.
                bucket["_latency"].counts = [0] * len(
                    bucket["_latency"].counts
                )
                bucket["_latency"].total = 0
                bucket["_latency"].sum = 0.0
                bucket["_latency"].max = 0.0
                endpoint_merged[kind] = bucket
            _merge_endpoint(bucket, endpoint)
    if batch is not None:
        merged["batch_size"] = batch.snapshot()
    for kind, bucket in sorted(endpoint_merged.items()):
        latency = bucket.pop("_latency")
        bucket["latency_s"] = latency.snapshot()
        merged["endpoints"][kind] = bucket
    return merged


def worker_summary(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """The compact per-worker row of a fleet ``stats`` reply."""
    endpoints = snapshot.get("endpoints") or {}
    predict = endpoints.get("predict") or {}
    cache = snapshot.get("predict_cache") or {}
    return {
        "requests": sum(
            int(e.get("requests", 0)) for e in endpoints.values()
        ),
        "predict_requests": int(predict.get("requests", 0)),
        "overloaded": int(snapshot.get("overloaded", 0)),
        "connections_active": int(
            (snapshot.get("connections") or {}).get("active", 0)
        ),
        "sessions_active": int(
            (snapshot.get("sessions") or {}).get("active", 0)
        ),
        "cache_hits": int(cache.get("hits", 0)),
        "published_at": snapshot.get("published_at"),
    }
