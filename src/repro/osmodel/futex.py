"""Futex wait queues (fast user-space mutex kernel side).

Multithreading libraries acquire uncontended locks with atomic instructions
in user space and fall into the kernel only on contention, via
``futex_wait`` / ``futex_wake`` (Section III.B, [18]). The paper's predictor
intercepts exactly these calls; our simulator routes every blocking
operation (contended locks, barriers, GC rendezvous, thread join) through
this table so the resulting trace carries the same information a kernel
module would see.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.common.errors import SimulationError


class FutexTable:
    """FIFO wait queues keyed by an integer futex address."""

    def __init__(self) -> None:
        self._queues: Dict[int, "OrderedDict[int, None]"] = {}
        self.wait_calls = 0
        self.wake_calls = 0

    def wait(self, key: int, tid: int) -> None:
        """Enqueue ``tid`` on futex ``key`` (the thread goes to sleep)."""
        queue = self._queues.setdefault(key, OrderedDict())
        if tid in queue:
            raise SimulationError(f"thread {tid} already waiting on futex {key}")
        queue[tid] = None
        self.wait_calls += 1

    def wake(self, key: int, n: int = 1) -> List[int]:
        """Wake up to ``n`` threads waiting on ``key``; return their tids in FIFO order."""
        self.wake_calls += 1
        queue = self._queues.get(key)
        if not queue:
            return []
        woken: List[int] = []
        while queue and len(woken) < n:
            tid, _ = queue.popitem(last=False)
            woken.append(tid)
        if not queue:
            del self._queues[key]
        return woken

    def wake_all(self, key: int) -> List[int]:
        """Wake every thread waiting on ``key``."""
        return self.wake(key, n=1 << 30)

    def waiters(self, key: int) -> List[int]:
        """Tids currently queued on ``key`` (FIFO order), without waking them."""
        queue = self._queues.get(key)
        return list(queue) if queue else []

    def remove(self, key: int, tid: int) -> bool:
        """Remove ``tid`` from ``key``'s queue (timeout/cancellation path)."""
        queue = self._queues.get(key)
        if queue and tid in queue:
            del queue[tid]
            if not queue:
                del self._queues[key]
            return True
        return False

    def total_waiters(self) -> int:
        """Number of threads asleep on any futex."""
        return sum(len(queue) for queue in self._queues.values())
