"""Operating-system substrate: threads, futexes, locks, scheduler.

The paper identifies synchronization epochs by intercepting ``futex_wait``
and ``futex_wake`` system calls (Section III.B) — every sleep and wake of a
thread marks an epoch boundary. This package provides the kernel-side
machinery the simulator uses to produce exactly that event stream:

* :mod:`repro.osmodel.threadmodel` — thread identities, kinds and states;
* :mod:`repro.osmodel.futex` — futex wait queues;
* :mod:`repro.osmodel.locks` — mutexes and barriers built on futexes
  (uncontended fast path in user space, kernel futex only on contention,
  mirroring pthreads);
* :mod:`repro.osmodel.scheduler` — mapping runnable threads onto cores,
  with round-robin timeslicing when threads outnumber cores.

All classes here are pure state machines: they decide *what* happens
(who blocks, who wakes, who runs) while the discrete-event engine in
:mod:`repro.sim` decides *when*.
"""

from repro.osmodel.futex import FutexTable
from repro.osmodel.locks import BarrierState, MutexState
from repro.osmodel.scheduler import Scheduler
from repro.osmodel.threadmodel import SimThread, ThreadKind, ThreadState

__all__ = [
    "BarrierState",
    "FutexTable",
    "MutexState",
    "Scheduler",
    "SimThread",
    "ThreadKind",
    "ThreadState",
]
