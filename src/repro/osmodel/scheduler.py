"""CPU scheduler: maps runnable threads onto a fixed set of cores.

Most of the paper's benchmarks run four application threads on four cores,
so each runnable thread owns a core. But ``avrora`` has six threads, and
during garbage collection the GC threads compete with any still-runnable
machinery, so the simulator needs a real scheduler: FIFO dispatch with
round-robin preemption when runnable threads exceed cores. Preemption
("a thread is scheduled out by the OS") is itself an epoch-boundary event
(Section III.B).

The scheduler is a pure state machine over tids; the engine asks it for
decisions and applies their timing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.common.errors import SimulationError
from repro.common.validation import check_positive


@dataclass(frozen=True)
class Dispatch:
    """A scheduling decision: run ``tid`` on ``core``."""

    tid: int
    core: int


class Scheduler:
    """FIFO run queue over ``n_cores`` cores with round-robin timeslicing."""

    def __init__(self, n_cores: int, timeslice_ns: float = 1_000_000.0) -> None:
        check_positive("n_cores", n_cores)
        check_positive("timeslice_ns", timeslice_ns)
        self.n_cores = n_cores
        self.timeslice_ns = timeslice_ns
        self._free_cores: List[int] = list(range(n_cores))
        self._running: Dict[int, int] = {}  # tid -> core
        self._queue: Deque[int] = deque()
        self._queued: Set[int] = set()
        self._running_sorted: Optional[Tuple[int, ...]] = ()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def running_tids(self) -> List[int]:
        """Tids currently occupying a core."""
        return list(self._running)

    def running_sorted(self) -> Tuple[int, ...]:
        """Tids currently on cores, ascending — cached between transitions.

        The trace layer snapshots this tuple on every emitted event; caching
        it removes a ``sorted()`` + tuple rebuild from the per-event path.
        """
        cached = self._running_sorted
        if cached is None:
            cached = self._running_sorted = tuple(sorted(self._running))
        return cached

    @property
    def queued_tids(self) -> List[int]:
        """Tids runnable but waiting for a core, FIFO order."""
        return list(self._queue)

    def core_of(self, tid: int) -> Optional[int]:
        """The core ``tid`` runs on, or None."""
        return self._running.get(tid)

    def is_oversubscribed(self) -> bool:
        """True when runnable threads outnumber cores."""
        return bool(self._queue)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def make_runnable(self, tid: int) -> Optional[Dispatch]:
        """A thread became runnable (spawned or woken).

        Returns a dispatch decision if a core is free, else queues the
        thread and returns None.
        """
        if tid in self._running or tid in self._queued:
            raise SimulationError(f"thread {tid} is already runnable/running")
        if self._free_cores:
            core = self._free_cores.pop(0)
            self._running[tid] = core
            self._running_sorted = None
            return Dispatch(tid=tid, core=core)
        self._queue.append(tid)
        self._queued.add(tid)
        return None

    def remove(self, tid: int) -> Optional[Dispatch]:
        """A running thread blocked or exited; its core may go to a queued thread.

        Returns the dispatch of the queued thread that inherits the core,
        if any.
        """
        core = self._running.pop(tid, None)
        if core is None:
            # A queued (not yet running) thread can also block, e.g. a
            # preempted thread hitting a GC rendezvous.
            if tid in self._queued:
                self._queue.remove(tid)
                self._queued.discard(tid)
                return None
            raise SimulationError(f"thread {tid} is not scheduled")
        self._running_sorted = None
        if self._queue:
            next_tid = self._queue.popleft()
            self._queued.discard(next_tid)
            self._running[next_tid] = core
            return Dispatch(tid=next_tid, core=core)
        self._free_cores.append(core)
        return None

    def should_preempt(self, tid: int, ran_for_ns: float) -> bool:
        """Round-robin policy: yield at a segment boundary when the timeslice
        has expired and someone is waiting for a core."""
        return bool(self._queue) and ran_for_ns >= self.timeslice_ns

    def preempt(self, tid: int) -> Dispatch:
        """Take ``tid`` off its core, dispatch the head of the queue there.

        ``tid`` re-joins the tail of the run queue. Only call when
        :meth:`should_preempt` returned True.
        """
        core = self._running.pop(tid, None)
        if core is None:
            raise SimulationError(f"cannot preempt non-running thread {tid}")
        if not self._queue:
            raise SimulationError("preempting with an empty run queue")
        self._running_sorted = None
        next_tid = self._queue.popleft()
        self._queued.discard(next_tid)
        self._running[next_tid] = core
        self._queue.append(tid)
        self._queued.add(tid)
        return Dispatch(tid=next_tid, core=core)
