"""Thread identities, kinds, and lifecycle states.

The managed runtime runs three kinds of threads (Section II.B): application
threads, garbage-collection threads and JIT compilation threads. The
predictors never distinguish them — DEP sees only futex activity — but COOP
and the JVM runtime do, so each simulated thread carries its kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.arch.counters import CounterSet


class ThreadKind(enum.Enum):
    """What role a thread plays in the managed runtime."""

    APPLICATION = "app"
    GC = "gc"
    JIT = "jit"


class ThreadState(enum.Enum):
    """Lifecycle / scheduling state of a simulated thread.

    ``RUNNING``   — on a core, executing its current segment.
    ``RUNNABLE``  — ready but waiting for a core (oversubscription).
    ``BLOCKED``   — asleep in ``futex_wait`` (lock, barrier, GC rendezvous).
    ``FINISHED``  — program exhausted.
    """

    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass
class SimThread:
    """One simulated thread: a program plus scheduling/counter bookkeeping."""

    tid: int
    name: str
    kind: ThreadKind
    #: Iterator over workload actions (see :mod:`repro.workloads.items`).
    program: Iterator[object]
    state: ThreadState = ThreadState.RUNNABLE
    #: Hardware counters accumulated so far (cumulative over the whole run).
    counters: CounterSet = field(default_factory=CounterSet)
    #: The core this thread currently occupies, if RUNNING.
    core: Optional[int] = None
    #: Wall time at which the current segment started, if one is in flight.
    segment_start_ns: Optional[float] = None
    #: Planned wall duration of the in-flight segment at the current
    #: frequency (rescaled if the frequency changes mid-segment).
    segment_wall_ns: Optional[float] = None
    #: Counter increments the in-flight segment will deposit on completion.
    segment_counters: Optional[CounterSet] = None
    #: Time at which the thread was last dispatched (for timeslice checks).
    dispatched_at_ns: float = 0.0
    #: Total time spent BLOCKED (diagnostics; also M+CRIT's blind spot).
    blocked_ns: float = 0.0
    #: Timestamp of the most recent transition into BLOCKED.
    blocked_since_ns: Optional[float] = None
    #: Merged-segment plan state: when the engine schedules a run of
    #: consecutive segments as one event, the per-segment boundary times,
    #: wall durations, counter increments and segment objects live here.
    #: ``plan_index`` is the first segment not yet committed to ``counters``;
    #: the scalar ``segment_*`` fields always mirror the current (in-flight)
    #: plan segment so interpolation is unchanged.
    plan_ends: Optional[List[float]] = None
    plan_walls: Optional[List[float]] = None
    plan_counters: Optional[List[CounterSet]] = None
    plan_segments: Optional[List[object]] = None
    plan_start_ns: float = 0.0
    plan_index: int = 0

    # ------------------------------------------------------------------
    # Merged-plan bookkeeping
    # ------------------------------------------------------------------

    def set_plan(
        self,
        start_ns: float,
        ends: List[float],
        walls: List[float],
        counters: List[CounterSet],
        segments: List[object],
    ) -> None:
        """Install a merged plan; the first segment starts at ``start_ns``."""
        self.plan_start_ns = start_ns
        self.plan_ends = ends
        self.plan_walls = walls
        self.plan_counters = counters
        self.plan_segments = segments
        self.plan_index = 0
        self.segment_start_ns = start_ns
        self.segment_wall_ns = walls[0]
        self.segment_counters = counters[0]

    def sync_plan(self, now_ns: float) -> None:
        """Commit plan segments that finished strictly before ``now_ns``.

        Completed segments deposit their counters one at a time (the same
        sequential accumulation order as per-segment completion events, so
        float results are unchanged) and the scalar ``segment_*`` fields are
        re-pointed at the now-current segment. A segment ending exactly at
        ``now_ns`` is left in flight — observers at that instant interpolate
        it at fraction 1.0, exactly as the unmerged engine did before its
        completion event popped.
        """
        ends = self.plan_ends
        i = self.plan_index
        n = len(ends)
        if i >= n or ends[i] >= now_ns:
            return
        counters = self.counters
        plan_counters = self.plan_counters
        while i < n and ends[i] < now_ns:
            counters.add(plan_counters[i])
            i += 1
        self.plan_index = i
        if i < n:
            self.segment_start_ns = ends[i - 1]
            self.segment_wall_ns = self.plan_walls[i]
            self.segment_counters = plan_counters[i]
        else:
            self.segment_start_ns = None
            self.segment_wall_ns = None
            self.segment_counters = None

    def finish_plan(self) -> None:
        """Commit every remaining plan segment and clear the plan."""
        plan_counters = self.plan_counters
        counters = self.counters
        for i in range(self.plan_index, len(plan_counters)):
            counters.add(plan_counters[i])
        self.clear_plan()

    def truncate_plan(self, cut_index: int) -> List[object]:
        """Drop plan segments after ``cut_index``; return them (in order)."""
        leftover = self.plan_segments[cut_index + 1:]
        del self.plan_ends[cut_index + 1:]
        del self.plan_walls[cut_index + 1:]
        del self.plan_counters[cut_index + 1:]
        del self.plan_segments[cut_index + 1:]
        return leftover

    def clear_plan(self) -> None:
        self.plan_ends = None
        self.plan_walls = None
        self.plan_counters = None
        self.plan_segments = None
        self.plan_index = 0
        self.segment_start_ns = None
        self.segment_wall_ns = None
        self.segment_counters = None

    def partial_counters(self, now_ns: float) -> CounterSet:
        """Cumulative counters including a pro-rata share of the in-flight segment.

        A hardware counter read at an arbitrary instant reflects progress
        through the current segment; this interpolation models that, so
        epoch snapshots taken while other threads are mid-segment are not
        quantized to segment boundaries.
        """
        if self.plan_ends is not None:
            self.sync_plan(now_ns)
        snapshot = self.counters.copy()
        if (
            self.segment_start_ns is not None
            and self.segment_wall_ns
            and self.segment_counters is not None
        ):
            if now_ns >= self.segment_start_ns + self.segment_wall_ns:
                # A segment observed exactly at its end boundary must
                # interpolate at fraction 1.0 — (now - start) / wall can
                # land one ulp below it, which would drop an instruction
                # from the int-truncated counters and make the snapshot
                # depend on event-queue tie order at that instant.
                fraction = 1.0
            else:
                fraction = (now_ns - self.segment_start_ns) / self.segment_wall_ns
                fraction = min(max(fraction, 0.0), 1.0)
            partial = CounterSet(
                active_ns=self.segment_counters.active_ns * fraction,
                crit_ns=self.segment_counters.crit_ns * fraction,
                leading_ns=self.segment_counters.leading_ns * fraction,
                stall_ns=self.segment_counters.stall_ns * fraction,
                sqfull_ns=self.segment_counters.sqfull_ns * fraction,
                insns=int(self.segment_counters.insns * fraction),
                stores=int(self.segment_counters.stores * fraction),
            )
            snapshot.add(partial)
        return snapshot

    @property
    def is_service(self) -> bool:
        """True for GC/JIT service threads (COOP's distinction)."""
        return self.kind is not ThreadKind.APPLICATION
