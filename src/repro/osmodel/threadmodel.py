"""Thread identities, kinds, and lifecycle states.

The managed runtime runs three kinds of threads (Section II.B): application
threads, garbage-collection threads and JIT compilation threads. The
predictors never distinguish them — DEP sees only futex activity — but COOP
and the JVM runtime do, so each simulated thread carries its kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.arch.counters import CounterSet


class ThreadKind(enum.Enum):
    """What role a thread plays in the managed runtime."""

    APPLICATION = "app"
    GC = "gc"
    JIT = "jit"


class ThreadState(enum.Enum):
    """Lifecycle / scheduling state of a simulated thread.

    ``RUNNING``   — on a core, executing its current segment.
    ``RUNNABLE``  — ready but waiting for a core (oversubscription).
    ``BLOCKED``   — asleep in ``futex_wait`` (lock, barrier, GC rendezvous).
    ``FINISHED``  — program exhausted.
    """

    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass
class SimThread:
    """One simulated thread: a program plus scheduling/counter bookkeeping."""

    tid: int
    name: str
    kind: ThreadKind
    #: Iterator over workload actions (see :mod:`repro.workloads.items`).
    program: Iterator[object]
    state: ThreadState = ThreadState.RUNNABLE
    #: Hardware counters accumulated so far (cumulative over the whole run).
    counters: CounterSet = field(default_factory=CounterSet)
    #: The core this thread currently occupies, if RUNNING.
    core: Optional[int] = None
    #: Wall time at which the current segment started, if one is in flight.
    segment_start_ns: Optional[float] = None
    #: Planned wall duration of the in-flight segment at the current
    #: frequency (rescaled if the frequency changes mid-segment).
    segment_wall_ns: Optional[float] = None
    #: Counter increments the in-flight segment will deposit on completion.
    segment_counters: Optional[CounterSet] = None
    #: Time at which the thread was last dispatched (for timeslice checks).
    dispatched_at_ns: float = 0.0
    #: Total time spent BLOCKED (diagnostics; also M+CRIT's blind spot).
    blocked_ns: float = 0.0
    #: Timestamp of the most recent transition into BLOCKED.
    blocked_since_ns: Optional[float] = None

    def partial_counters(self, now_ns: float) -> CounterSet:
        """Cumulative counters including a pro-rata share of the in-flight segment.

        A hardware counter read at an arbitrary instant reflects progress
        through the current segment; this interpolation models that, so
        epoch snapshots taken while other threads are mid-segment are not
        quantized to segment boundaries.
        """
        snapshot = self.counters.copy()
        if (
            self.segment_start_ns is not None
            and self.segment_wall_ns
            and self.segment_counters is not None
        ):
            fraction = (now_ns - self.segment_start_ns) / self.segment_wall_ns
            fraction = min(max(fraction, 0.0), 1.0)
            partial = CounterSet(
                active_ns=self.segment_counters.active_ns * fraction,
                crit_ns=self.segment_counters.crit_ns * fraction,
                leading_ns=self.segment_counters.leading_ns * fraction,
                stall_ns=self.segment_counters.stall_ns * fraction,
                sqfull_ns=self.segment_counters.sqfull_ns * fraction,
                insns=int(self.segment_counters.insns * fraction),
                stores=int(self.segment_counters.stores * fraction),
            )
            snapshot.add(partial)
        return snapshot

    @property
    def is_service(self) -> bool:
        """True for GC/JIT service threads (COOP's distinction)."""
        return self.kind is not ThreadKind.APPLICATION
