"""Mutex and barrier state machines built over futexes.

These mirror pthreads semantics: the uncontended path never touches the
futex table (user-space atomics), so uncontended synchronization produces
*no* epoch boundaries — exactly the behaviour the paper relies on when it
says intercepting futexes has negligible overhead.

The classes are pure decision logic. They tell the caller whether the
requesting thread proceeds or must ``futex_wait``, and whom to
``futex_wake``; the simulation engine performs the actual blocking and
waking and logs the trace events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.common.errors import SimulationError


@dataclass
class MutexState:
    """One mutex: owner + FIFO queue of contenders.

    ``acquire`` returns True when the lock was taken on the fast path;
    False means the caller must sleep (the mutex remembers it as a waiter).
    ``release`` returns the tid to hand the lock to (and wake), if any.
    """

    lock_id: int
    owner: Optional[int] = None
    waiters: Deque[int] = field(default_factory=deque)
    acquisitions: int = 0
    contended_acquisitions: int = 0

    def acquire(self, tid: int) -> bool:
        """Try to take the mutex for ``tid``; True on fast-path success."""
        if self.owner == tid:
            raise SimulationError(
                f"thread {tid} re-acquiring non-recursive mutex {self.lock_id}"
            )
        if self.owner is None:
            self.owner = tid
            self.acquisitions += 1
            return True
        if tid in self.waiters:
            raise SimulationError(
                f"thread {tid} already queued on mutex {self.lock_id}"
            )
        self.waiters.append(tid)
        self.contended_acquisitions += 1
        return False

    def release(self, tid: int) -> Optional[int]:
        """Release the mutex; return the next owner's tid to wake, if any.

        Ownership transfers directly to the woken waiter (FIFO handoff),
        so a woken thread resumes as the owner without re-contending.
        """
        if self.owner != tid:
            raise SimulationError(
                f"thread {tid} releasing mutex {self.lock_id} owned by {self.owner}"
            )
        if self.waiters:
            next_owner = self.waiters.popleft()
            self.owner = next_owner
            self.acquisitions += 1
            return next_owner
        self.owner = None
        return None

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to sleep (diagnostics)."""
        total = self.acquisitions
        return self.contended_acquisitions / total if total else 0.0


@dataclass
class BarrierState:
    """A reusable (cyclic) barrier for a fixed party count.

    ``arrive`` returns the list of tids to wake when the caller is the last
    party (everyone previously asleep), or None when the caller must sleep.
    The barrier resets itself for the next generation on release, like
    ``pthread_barrier_wait``.
    """

    barrier_id: int
    parties: int
    waiting: List[int] = field(default_factory=list)
    generation: int = 0

    def __post_init__(self) -> None:
        if self.parties <= 0:
            raise SimulationError(
                f"barrier {self.barrier_id} needs >= 1 party, got {self.parties}"
            )

    def arrive(self, tid: int) -> Optional[List[int]]:
        """Register ``tid`` at the barrier.

        Returns the tids to wake (possibly empty, when ``parties == 1``)
        if the barrier trips, else None (caller sleeps).
        """
        if tid in self.waiting:
            raise SimulationError(
                f"thread {tid} arrived twice at barrier {self.barrier_id}"
            )
        if len(self.waiting) + 1 == self.parties:
            woken = list(self.waiting)
            self.waiting.clear()
            self.generation += 1
            return woken
        self.waiting.append(tid)
        return None

    @property
    def arrived(self) -> int:
        """Number of parties currently asleep at the barrier."""
        return len(self.waiting)
