"""Trace diagnostics: what is this workload doing, and who is critical?

Simulates the ``pmd`` model (the benchmark with the scaling bottleneck),
then walks through the analysis toolkit:

* trace statistics — epochs, futex traffic, GC pauses, counter budgets;
* criticality stacks (Du Bois et al.) — the imbalanced thread shows up
  immediately;
* per-epoch prediction breakdown — where DEP+BURST's predicted time goes,
  and how much of it is GC;
* trace serialization — archive the run, reload it, predict offline.

Run:  python examples/trace_analysis.py [scale]
"""

import sys
import tempfile
from pathlib import Path

from repro import get_benchmark, simulate
from repro.analysis import criticality_stack, epoch_error_breakdown, trace_stats
from repro.analysis.charts import stats_chart
from repro.common.tables import format_table
from repro.core.predictors import make_predictor
from repro.sim.serialize import load_trace, save_trace


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    bundle = get_benchmark("pmd", scale=scale)
    print(f"Simulating pmd at 1 GHz (scale {scale}) ...\n")
    result = simulate(
        bundle.program, 1.0, jvm_config=bundle.jvm_config,
        gc_model=bundle.gc_model,
    )
    trace = result.trace

    # --- 1. Trace statistics -------------------------------------------
    stats = trace_stats(trace)
    print(format_table(["metric", "value"], stats.summary_rows(),
                       title="Trace statistics"))
    print()
    print(stats_chart(stats))

    # --- 2. Criticality stack ------------------------------------------
    stack = criticality_stack(trace)
    rows = [
        (trace.threads[tid].name, f"{share:.1%}")
        for tid, share in stack.ranked()
        if share > 0.005
    ]
    print()
    print(format_table(["thread", "criticality share"], rows,
                       title="Criticality stack (Du Bois et al. style)"))
    print("pmd's scaling bottleneck: the most loaded worker dominates.")

    # --- 3. Prediction breakdown ---------------------------------------
    from repro.core.burst import with_burst
    from repro.core.crit import crit_nonscaling

    breakdown = epoch_error_breakdown(
        trace, 4.0, estimator=with_burst(crit_nonscaling)
    )
    gc_ns, app_ns = breakdown.gc_split()
    print()
    print("DEP+BURST prediction for 4 GHz:")
    print(f"  predicted total : {breakdown.total_predicted_ns / 1e6:8.1f} ms "
          f"(speedup {breakdown.speedup():.2f}x)")
    print(f"  GC share        : {gc_ns / breakdown.total_predicted_ns:8.1%}")
    print("  heaviest epochs :")
    for contribution in breakdown.top_contributors(3):
        kind = "GC " if contribution.during_gc else "app"
        print(f"    [{kind}] epoch {contribution.index:5d}: "
              f"{contribution.predicted_ns / 1e3:8.1f} us predicted, "
              f"scaling fraction {contribution.scaling_fraction:.0%}")

    # --- 4. Serialize + reload -----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pmd-1ghz.json.gz"
        save_trace(trace, path)
        reloaded = load_trace(path)
        predictor = make_predictor("DEP+BURST")
        a = predictor.predict_total_ns(trace, 4.0)
        b = predictor.predict_total_ns(reloaded, 4.0)
        print(f"\nArchived trace to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB); reloaded prediction "
              f"matches: {abs(a - b) < 1e-6}")


if __name__ == "__main__":
    main()
