"""Author a custom managed workload and evaluate all the predictors on it.

Shows the full authoring surface of :class:`SyntheticWorkloadConfig`:
memory intensity, allocation rate, lock contention, barriers, per-thread
skew, and phase behaviour. The script evaluates the six predictors in both
directions (1 -> 4 GHz and 4 -> 1 GHz) on the resulting program.

Run:  python examples/custom_workload.py
"""

from repro import make_predictor, predictor_names, simulate
from repro.common.tables import format_table
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    build_synthetic_program,
)


def main() -> None:
    config = SyntheticWorkloadConfig(
        name="my-service",
        seed=2026,
        n_threads=4,
        n_units=900,
        unit_insns=120_000,
        cpi=0.6,
        # Memory behaviour: one LLC-miss cluster per ~700 instructions,
        # short dependent chains, scattered rows.
        clusters_per_kinsn=1.4,
        chain_depth_mean=1.6,
        chain_locality=0.3,
        # Managed allocation: ~40 KB per work unit, batched.
        alloc_bytes_per_unit=40_000,
        alloc_every=6,
        # Synchronization: a hot lock plus a phase barrier every 100 units.
        cs_probability=0.3,
        cs_insns=20_000,
        n_locks=1,
        barrier_period=100,
        # Heterogeneity: thread 3 is markedly more memory-bound; the whole
        # program alternates between compute and memory phases.
        memory_skew=0.4,
        phase_amplitude=0.5,
        phase_periods=5.0,
        heap_mb=96,
        nursery_mb=16,
        survival_rate=0.2,
    )
    program = build_synthetic_program(config)
    print(
        f"Program '{program.name}': {program.n_threads} threads, "
        f"{program.total_allocated_bytes() >> 20} MB allocated over the run"
    )

    runs = {f: simulate(program, f) for f in (1.0, 4.0)}
    for freq, run in runs.items():
        print(
            f"  {freq:.0f} GHz: {run.total_ms:8.1f} ms, "
            f"GC {run.gc_fraction:.0%} ({run.trace.gc_cycles} cycles)"
        )

    rows = []
    for name in predictor_names():
        predictor = make_predictor(name)
        up = predictor.predict_total_ns(runs[1.0].trace, 4.0)
        down = predictor.predict_total_ns(runs[4.0].trace, 1.0)
        rows.append(
            (
                name,
                f"{up / runs[4.0].total_ns - 1:+.1%}",
                f"{down / runs[1.0].total_ns - 1:+.1%}",
            )
        )
    print()
    print(
        format_table(
            ["model", "error 1->4 GHz", "error 4->1 GHz"], rows,
            title="Prediction error on the custom workload",
        )
    )


if __name__ == "__main__":
    main()
