"""Quickstart: predict the DVFS behaviour of a managed multithreaded workload.

Builds a scaled-down model of the DaCapo ``xalan`` benchmark, simulates the
ground truth at 1 GHz and 4 GHz, and compares every predictor of the paper
(M+CRIT, COOP, DEP, each with and without BURST) on the 1 GHz -> 4 GHz
prediction.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro import get_benchmark, make_predictor, predictor_names, simulate
from repro.common.tables import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print(f"Building xalan model at scale {scale} ...")
    bundle = get_benchmark("xalan", scale=scale)

    print("Simulating ground truth at 1 GHz and 4 GHz ...")
    base = simulate(
        bundle.program, 1.0, jvm_config=bundle.jvm_config,
        gc_model=bundle.gc_model,
    )
    actual = simulate(
        bundle.program, 4.0, jvm_config=bundle.jvm_config,
        gc_model=bundle.gc_model,
    )
    print(
        f"  1 GHz: {base.total_ms:8.1f} ms "
        f"(GC {base.gc_fraction:.0%} across {base.trace.gc_cycles} cycles)"
    )
    print(f"  4 GHz: {actual.total_ms:8.1f} ms "
          f"(speedup {base.total_ns / actual.total_ns:.2f}x)")

    rows = []
    for name in predictor_names():
        predictor = make_predictor(name)
        predicted_ns = predictor.predict_total_ns(base.trace, 4.0)
        error = predicted_ns / actual.total_ns - 1.0
        rows.append((name, f"{predicted_ns / 1e6:.1f}", f"{error:+.1%}"))
    print()
    print(
        format_table(
            ["model", "predicted (ms)", "error"], rows,
            title="Predicting 4 GHz execution time from the 1 GHz run",
        )
    )
    print(
        "\nDEP+BURST models synchronization epochs AND store bursts — the "
        "two effects naive predictors miss on managed workloads."
    )


if __name__ == "__main__":
    main()
