"""Figure 2 walk-through: how DEP decomposes execution into epochs.

Recreates the paper's running example: two threads contending on a critical
section. Thread t1 arrives at the lock while t0 holds it, sleeps on the
futex, and is woken at release — producing three synchronization epochs.
The script prints the epochs extracted from the simulated futex trace and
shows how per-epoch and across-epoch critical thread prediction aggregate
them at a target frequency.

Run:  python examples/epoch_walkthrough.py
"""

from repro.arch.segments import ComputeSegment, MemorySegment, MissCluster
from repro.common.tables import format_table
from repro.core.dep import DepPredictor
from repro.core.epochs import extract_epochs
from repro.sim.run import simulate
from repro.workloads.items import Acquire, Release, Run
from repro.workloads.program import Program, ThreadProgram


def build_program() -> Program:
    """Two threads, one critical section — Figure 2(a)."""
    mem = MemorySegment.from_clusters(
        insns=120_000, cpi=0.5,
        clusters=[MissCluster(1, 90.0) for _ in range(200)],
    )
    t0 = ThreadProgram(
        name="t0",
        actions=(
            Run(ComputeSegment(insns=100_000, cpi=0.5)),   # epoch 1 (a)
            Acquire(lock_id=1),
            Run(mem),                                       # epoch 2 (b)
            Release(lock_id=1),
            Run(ComputeSegment(insns=300_000, cpi=0.5)),   # epoch 3 (c)
        ),
    )
    t1 = ThreadProgram(
        name="t1",
        actions=(
            Run(ComputeSegment(insns=200_000, cpi=0.5)),   # epoch 1 (x)
            Acquire(lock_id=1),                             # sleeps!
            Run(ComputeSegment(insns=80_000, cpi=0.5)),
            Release(lock_id=1),
            Run(ComputeSegment(insns=260_000, cpi=0.5)),   # epoch 3 (z)
        ),
    )
    return Program(
        name="figure2", threads=(t0, t1),
        heap_bytes=64 << 20, nursery_bytes=8 << 20,
    )


def main() -> None:
    program = build_program()
    base_freq, target_freq = 1.0, 4.0
    base = simulate(program, base_freq)
    actual = simulate(program, target_freq)

    epochs = extract_epochs(base.trace.events)
    rows = []
    for epoch in epochs:
        if epoch.duration_ns < 1.0:
            continue
        members = ", ".join(f"t{tid}" for tid in epoch.active_tids)
        crit = sum(c.crit_ns for c in epoch.thread_deltas.values())
        rows.append(
            (
                epoch.index,
                f"{epoch.start_ns / 1e3:.1f}",
                f"{epoch.duration_ns / 1e3:.1f}",
                members or "(idle)",
                f"t{epoch.stall_tid}" if epoch.stall_tid is not None else "-",
                f"{crit / 1e3:.1f}",
            )
        )
    print(
        format_table(
            ["epoch", "start (us)", "length (us)", "running", "sleeper",
             "CRIT ns (us)"],
            rows,
            title=f"Synchronization epochs of the Figure-2 program at "
                  f"{base_freq:.0f} GHz",
        )
    )

    across = DepPredictor(across_epoch_ctp=True)
    per = DepPredictor(across_epoch_ctp=False)
    predicted_across = across.predict_total_ns(base.trace, target_freq)
    predicted_per = per.predict_total_ns(base.trace, target_freq)
    print()
    print(f"measured at {target_freq:.0f} GHz : {actual.total_ns / 1e3:9.1f} us")
    print(f"DEP across-epoch CTP  : {predicted_across / 1e3:9.1f} us "
          f"({predicted_across / actual.total_ns - 1:+.1%})")
    print(f"DEP per-epoch CTP     : {predicted_per / 1e3:9.1f} us "
          f"({predicted_per / actual.total_ns - 1:+.1%})")
    print(
        "\nEvery futex sleep/wake starts a new epoch; DEP predicts each "
        "active thread per epoch and carries early-finisher slack across "
        "epochs with Algorithm 1's delta counters."
    )


if __name__ == "__main__":
    main()
