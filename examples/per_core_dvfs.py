"""Per-core DVFS — the paper's stated future work, demonstrated.

Section VII: "Prior work investigates the potential of per-core DVFS in
managing the energy consumption of multithreaded applications. However, we
leave this for future work." The simulator supports it: with
``per_core_dvfs=True`` every segment is timed at the frequency of the core
the thread occupies, and governors may return ``{core: GHz}`` maps.

This demo runs a four-thread workload where thread 3 is strongly
memory-bound (high per-thread memory skew). A per-core governor slows only
that thread's core: the memory-bound thread barely notices, the
compute-bound threads keep their full speed — the scenario chip-wide DVFS
cannot express.

Run:  python examples/per_core_dvfs.py
"""

from repro.common.tables import format_table
from repro.sim.system import System
from repro.sim.trace import EventKind
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    build_synthetic_program,
)


def make_workload():
    return build_synthetic_program(
        SyntheticWorkloadConfig(
            name="skewed",
            seed=99,
            n_threads=4,
            n_units=260,
            unit_insns=120_000,
            clusters_per_kinsn=1.2,
            memory_skew=0.9,          # thread 3 very memory-bound
            alloc_bytes_per_unit=0,   # keep GC out of the comparison
            cs_probability=0.0,
        )
    )


def slow_core_governor(core: int, freq_ghz: float):
    """Switch one core down at the first quantum, then hold."""
    fired = {"done": False}

    def governor(record, trace):
        if fired["done"]:
            return None
        fired["done"] = True
        return {core: freq_ghz}

    return governor


def exit_times(trace):
    return {
        e.tid: e.time_ns
        for e in trace.events
        if e.kind is EventKind.EXIT and e.tid in trace.app_tids()
        and e.detail != "teardown"
    }


def run(label, governor=None):
    system = System(
        make_workload(), governor=governor, freq_ghz=4.0,
        quantum_ns=2.5e5, per_core_dvfs=True,
    )
    trace = system.run()
    return label, trace


def main() -> None:
    baseline_label, baseline = run("all cores @ 4 GHz")
    rows = []
    base_exits = exit_times(baseline)
    for core in (0, 3):
        label, trace = run(
            f"core {core} @ 2 GHz", slow_core_governor(core, 2.0)
        )
        exits = exit_times(trace)
        slow = {
            tid: exits[tid] / base_exits[tid] - 1.0 for tid in sorted(exits)
        }
        rows.append(
            (
                label,
                f"{trace.total_ns / 1e6:.2f}",
                f"{trace.total_ns / baseline.total_ns - 1:+.1%}",
                ", ".join(f"t{tid} {value:+.0%}" for tid, value in slow.items()),
            )
        )
    print(f"baseline ({baseline_label}): {baseline.total_ns / 1e6:.2f} ms\n")
    print(
        format_table(
            ["scenario", "total (ms)", "slowdown", "per-thread slowdown"],
            rows,
            title="Per-core DVFS on a memory-skewed workload",
        )
    )
    print(
        "\nTwo per-core effects chip-wide DVFS cannot express: slowing the "
        "compute-bound thread's core (core 0) stretches that thread ~2x "
        "yet costs NOTHING overall — it was never critical, its slack "
        "absorbs the slowdown. And even the *critical* memory-bound "
        "thread's core (core 3) slows far less than the 2x clock ratio, "
        "because its DRAM chains do not scale. Per-core DVFS harvests "
        "both effects; the paper flags it as the natural next step."
    )


if __name__ == "__main__":
    main()
