"""Energy manager demo: slack-bounded DVFS on a memory-intensive workload.

Runs the paper's energy manager (Section VI) on the ``lusearch`` model with
5% and 10% tolerable slowdowns, prints the frequency timeline the manager
chose, and reports energy savings against always running at 4 GHz.

Run:  python examples/energy_manager_demo.py [scale]
"""

import sys

from repro import get_benchmark, simulate, simulate_managed
from repro.common.tables import format_table
from repro.energy import EnergyManager, ManagerConfig, compute_energy


def frequency_timeline(decisions, width: int = 64) -> str:
    """Compress the per-quantum frequency choices into an ASCII strip."""
    if not decisions:
        return "(no decisions)"
    freqs = [d.chosen_freq_ghz for d in decisions]
    step = max(1, len(freqs) // width)
    glyphs = []
    for i in range(0, len(freqs), step):
        chunk = freqs[i:i + step]
        mean = sum(chunk) / len(chunk)
        # 1.0..4.0 GHz -> '1'..'4'
        glyphs.append(str(int(round(mean))))
    return "".join(glyphs)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    bundle = get_benchmark("lusearch", scale=scale)
    print(f"lusearch at scale {scale}: simulating the 4 GHz baseline ...")
    baseline = simulate(
        bundle.program, 4.0, jvm_config=bundle.jvm_config,
        gc_model=bundle.gc_model,
    )
    base_energy = compute_energy(baseline.trace, bundle.spec)
    print(f"  baseline: {baseline.total_ms:.1f} ms, "
          f"{base_energy.total_j:.3f} J, {base_energy.avg_power_w:.1f} W avg")

    rows = []
    for threshold in (0.05, 0.10):
        manager = EnergyManager(
            bundle.spec, ManagerConfig(tolerable_slowdown=threshold)
        )
        managed = simulate_managed(
            bundle.program, manager, spec=bundle.spec,
            jvm_config=bundle.jvm_config, gc_model=bundle.gc_model,
        )
        energy = compute_energy(managed.trace, bundle.spec)
        slowdown = managed.total_ns / baseline.total_ns - 1.0
        saving = 1.0 - energy.total_j / base_energy.total_j
        mean_freq = (
            sum(d.chosen_freq_ghz for d in manager.decisions)
            / max(1, len(manager.decisions))
        )
        rows.append(
            (f"{threshold:.0%}", f"{slowdown:+.1%}", f"{saving:+.1%}",
             f"{mean_freq:.2f}")
        )
        print(f"\n  threshold {threshold:.0%} — frequency timeline "
              f"(one glyph per ~{max(1, len(manager.decisions) // 64)} quanta, "
              "1=1 GHz .. 4=4 GHz):")
        print(f"  {frequency_timeline(manager.decisions)}")

    print()
    print(
        format_table(
            ["threshold", "slowdown", "energy saving", "mean freq (GHz)"],
            rows,
            title="DEP+BURST energy manager on lusearch",
        )
    )
    print(
        "\nThe manager drops the frequency whenever the predictor says the "
        "interval is memory/GC-bound enough to stay within the slowdown "
        "budget — watch the timeline dip during collection-heavy stretches."
    )


if __name__ == "__main__":
    main()
