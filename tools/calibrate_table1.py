"""Calibration helper: compare simulated benchmark stats against Table I.

Runs each benchmark at a reduced scale at 1 GHz and extrapolates execution
and GC time linearly to scale 1.0 (per-unit behaviour is scale-invariant).
Used during development to tune the DaCapo model parameters.

Usage: python tools/calibrate_table1.py [scale] [bench ...]
"""

import sys
import time

from repro import get_benchmark, simulate
from repro.workloads.dacapo import TABLE1_EXPECTED


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.12
    names = sys.argv[2:] or list(TABLE1_EXPECTED)
    print(f"scale={scale}")
    print(f"{'bench':14s} {'exec(ms)':>9s} {'target':>7s} {'gc(ms)':>7s} "
          f"{'target':>7s} {'gc%':>6s} {'gcs':>4s} {'segs/ms':>8s} {'wall(s)':>8s}")
    for name in names:
        row = TABLE1_EXPECTED[name]
        t0 = time.time()
        bundle = get_benchmark(name, scale=scale)
        res = simulate(bundle.program, 1.0, jvm_config=bundle.jvm_config,
                       gc_model=bundle.gc_model)
        wall = time.time() - t0
        exec_x = res.total_ms / scale
        gc_x = res.gc_time_ms / scale
        print(f"{name:14s} {exec_x:9.0f} {row.exec_time_ms:7.0f} {gc_x:7.0f} "
              f"{row.gc_time_ms:7.0f} {res.gc_fraction:6.1%} "
              f"{res.trace.gc_cycles:4d} {'':8s} {wall:8.1f}")


if __name__ == "__main__":
    main()
