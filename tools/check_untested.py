#!/usr/bin/env python
"""CI lint: no src/repro module silently lacks a unit-test file.

A module ``src/repro/<pkg>/<name>.py`` counts as *tested* when some
``tests/**/test_<name>.py`` exists (any tests subdirectory: the suite
mirrors package names loosely — e.g. ``repro.osmodel.futex`` is covered
by ``tests/osmodel/test_futex.py``). Modules with no matching test file
must be listed in ``tools/untested_allowlist.txt``; the build fails when

* an unlisted module has no test file (the list grew), or
* an allowlisted module gained a test file (the entry is stale).

So the allowlist only ever shrinks, and every new module ships either a
test file or a deliberate, reviewable allowlist entry.

Usage: python tools/check_untested.py [--repo-root PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ALLOWLIST = Path("tools/untested_allowlist.txt")

#: Files that are namespaces, not modules with testable behaviour.
IGNORED_NAMES = {"__init__.py", "__main__.py"}


def modules(repo_root: Path):
    src = repo_root / "src" / "repro"
    return sorted(
        path.relative_to(src).as_posix()
        for path in src.rglob("*.py")
        if path.name not in IGNORED_NAMES
    )


def tested_names(repo_root: Path):
    return {
        path.name[len("test_"):-len(".py")]
        for path in (repo_root / "tests").rglob("test_*.py")
    }


def read_allowlist(repo_root: Path):
    path = repo_root / ALLOWLIST
    if not path.exists():
        return set()
    entries = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            entries.add(line)
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root", type=Path,
        default=Path(__file__).resolve().parent.parent,
    )
    args = parser.parse_args(argv)
    repo_root = args.repo_root

    tested = tested_names(repo_root)
    allowlist = read_allowlist(repo_root)
    untested = [
        module for module in modules(repo_root)
        if Path(module).stem not in tested
    ]

    failures = 0
    for module in untested:
        if module not in allowlist:
            print(
                f"UNTESTED {module}: add tests/**/test_{Path(module).stem}.py "
                f"or an entry in {ALLOWLIST}"
            )
            failures += 1
    for entry in sorted(allowlist - set(untested)):
        print(
            f"STALE ALLOWLIST ENTRY {entry}: a test file exists now; "
            f"remove it from {ALLOWLIST}"
        )
        failures += 1

    if failures:
        print(f"\n{failures} problem(s); {len(untested)} untested module(s)")
        return 1
    print(
        f"ok: {len(untested)} allowlisted untested module(s), "
        f"none unaccounted for"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
