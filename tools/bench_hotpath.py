"""Hot-path throughput benchmark: time the DES core on a pinned workload.

Usage::

    PYTHONPATH=src python tools/bench_hotpath.py                  # full scale
    REPRO_SCALE=0.05 PYTHONPATH=src python tools/bench_hotpath.py --reps 2
    python tools/bench_hotpath.py --check BENCH_hotpath.json      # CI gate

Emits ``BENCH_hotpath.json`` (override with ``--out``) with wall time,
events/sec and segments/sec for the fast and classic engines on the
``hotpath_stress`` workload (see :mod:`repro.sim.bench`). With ``--check
BASELINE``, compares the fresh run's fast-engine events/sec against the
committed baseline file and exits non-zero on a >30% regression — the CI
smoke gate. ``repro-sim bench`` wraps the same runner.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.bench import bench_payload  # noqa: E402

#: CI fails when fast-engine events/sec drops below this fraction of the
#: committed baseline.
REGRESSION_FLOOR = 0.70


def _fast_entry(payload: dict) -> dict:
    entries = [e for e in payload["results"] if e["engine"] == "fast"]
    if not entries:
        raise SystemExit("no fast-engine entry in benchmark payload")
    # events/sec is a throughput and thus roughly scale-invariant, so any
    # fast entry works as the reference; prefer the smallest scale (what
    # CI re-measures).
    return min(entries, key=lambda e: e["scale"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, nargs="+",
        default=[float(os.environ.get("REPRO_SCALE", "1.0"))],
        help="workload length scale(s) (default REPRO_SCALE or 1.0)",
    )
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per engine (headline numbers use "
                             "the min; min/median/mean are all recorded)")
    parser.add_argument("--out", default="BENCH_hotpath.json",
                        help="output JSON path")
    parser.add_argument("--engines", nargs="+", default=["fast", "classic"],
                        choices=["fast", "classic"])
    parser.add_argument(
        "--baseline-wall", type=float, default=None,
        help="pre-PR wall time (s) on the same workload, for the speedup field",
    )
    parser.add_argument(
        "--check", metavar="BASELINE_JSON", default=None,
        help="compare fast-engine events/sec against a committed baseline "
             "file scaled to this run's workload; exit 1 on >30%% regression",
    )
    args = parser.parse_args(argv)

    payload = bench_payload(
        scales=args.scale, reps=args.reps, engines=args.engines,
        baseline_wall_s=args.baseline_wall,
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for entry in payload["results"]:
        speedup = entry.get("speedup_vs_baseline")
        note = f", {speedup:.2f}x vs pre-PR" if speedup else ""
        stats = entry["wall_stats_s"]
        print(
            f"{entry['engine']:>8} @ scale {entry['scale']:g}: "
            f"min {stats['min']:.3f}s / median {stats['median']:.3f}s / "
            f"mean {stats['mean']:.3f}s "
            f"({entry['events_per_sec']:,.0f} events/s, "
            f"{entry['segments_per_sec']:,.0f} segments/s{note})"
        )
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        base_eps = _fast_entry(baseline)["events_per_sec"]
        new_eps = _fast_entry(payload)["events_per_sec"]
        ratio = new_eps / base_eps
        print(
            f"events/sec vs baseline: {new_eps:,.0f} / {base_eps:,.0f} "
            f"= {ratio:.2f}x (floor {REGRESSION_FLOOR:.2f}x)"
        )
        if ratio < REGRESSION_FLOOR:
            print("FAIL: hot-path throughput regressed by more than 30%")
            return 1
        print("ok: within regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
