"""Load generator for the online prediction service.

Usage::

    PYTHONPATH=src python tools/bench_serve.py                  # defaults
    PYTHONPATH=src python tools/bench_serve.py --clients 16 --duration 5
    PYTHONPATH=src python tools/bench_serve.py --check BENCH_serve.json

Stands up a real server in-process (unix socket, batching enabled) and
hammers the ``predict`` endpoint from N closed-loop client threads, each
on its own connection so the batching window actually coalesces
concurrent requests. Emits ``BENCH_serve.json`` with requests/sec,
client-side p50/p99 latency and the server's batch-size histogram (read
over the wire via ``stats``).

With ``--check BASELINE``, compares a fresh run's requests/sec against
the committed baseline and exits non-zero on a >50% regression — the CI
serve-smoke gate. ``--min-rps`` is an absolute floor (default 1000 with
``--check``, otherwise off).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch.counters import CounterSet  # noqa: E402
from repro.core.epochs import Epoch  # noqa: E402
from repro.serve.background import BackgroundServer  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.server import ServeConfig  # noqa: E402

#: CI fails when requests/sec drops below this fraction of the baseline.
REGRESSION_FLOOR = 0.50


def payload_epochs(n_epochs: int = 8, n_threads: int = 4):
    """A deterministic, realistically-shaped predict payload."""
    epochs = []
    t = 0.0
    for i in range(n_epochs):
        span = 200_000.0 + 25_000.0 * (i % 3)
        deltas = {}
        for tid in range(n_threads):
            active = span * (0.5 + 0.1 * ((i + tid) % 4))
            deltas[tid] = CounterSet(
                active_ns=active,
                crit_ns=active * 0.35,
                leading_ns=active * 0.20,
                stall_ns=active * 0.30,
                sqfull_ns=active * 0.05,
                insns=int(active * 1.5),
                stores=int(active * 0.2),
            )
        epochs.append(
            Epoch(
                index=i,
                start_ns=t,
                end_ns=t + span,
                thread_deltas=deltas,
                stall_tid=(i % n_threads) if i % 2 else None,
                during_gc=False,
            )
        )
        t += span
    return epochs


def _worker(socket_path, epochs, predictor, stop_at, latencies, errors):
    from repro.serve import protocol

    client = ServeClient.connect(socket_path=socket_path)
    # Pre-serialize the payload once: a load generator measures the
    # server, not the client's per-request JSON encoding.
    payload = {
        "predictor": predictor,
        "across_epoch_ctp": True,
        "base_freq_ghz": 1.0,
        "target_freqs_ghz": [2.0, 3.0, 4.0],
        "epochs": [protocol.epoch_to_wire(e) for e in epochs],
    }
    try:
        while time.perf_counter() < stop_at:
            started = time.perf_counter()
            try:
                client.request("predict", **payload)
            except Exception:
                errors.append(1)
                continue
            latencies.append(time.perf_counter() - started)
    finally:
        client.close()


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def run_bench(args) -> dict:
    """Run the load; return the BENCH_serve payload."""
    config = dict(
        clients=args.clients,
        duration_s=args.duration,
        predictor=args.predictor,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        epochs_per_request=args.epochs,
        scale=float(os.environ.get("REPRO_SCALE", "1.0")),
    )
    epochs = payload_epochs(n_epochs=args.epochs)
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        socket_path = os.path.join(tmp, "serve.sock")
        serve_config = ServeConfig(
            socket_path=socket_path,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1000.0,
        )
        with BackgroundServer(serve_config):
            # Warm up the predictor/vectorizer caches outside the window.
            with ServeClient.connect(socket_path=socket_path) as warm:
                for _ in range(5):
                    warm.predict(epochs, 1.0, predictor=args.predictor)
            latencies: list = []
            errors: list = []
            stop_at = time.perf_counter() + args.duration
            started = time.perf_counter()
            threads = [
                threading.Thread(
                    target=_worker,
                    args=(socket_path, epochs, args.predictor, stop_at,
                          latencies, errors),
                    daemon=True,
                )
                for _ in range(args.clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            with ServeClient.connect(socket_path=socket_path) as reader:
                stats = reader.stats()
    latencies.sort()
    requests = len(latencies)
    return {
        "benchmark": "serve_predict",
        "config": config,
        "elapsed_s": round(elapsed, 3),
        "requests": requests,
        "errors": len(errors),
        "req_per_s": round(requests / elapsed, 1) if elapsed else 0.0,
        "latency_ms": {
            "min": round(latencies[0] * 1e3, 3) if requests else 0.0,
            "median": round(_quantile(latencies, 0.50) * 1e3, 3),
            "p50": round(_quantile(latencies, 0.50) * 1e3, 3),
            "p99": round(_quantile(latencies, 0.99) * 1e3, 3),
            "mean": round(sum(latencies) / requests * 1e3, 3)
            if requests else 0.0,
        },
        "batch_size": stats["batch_size"],
        "server_overloaded": stats["overloaded"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop client connections")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="measurement window in seconds")
    parser.add_argument("--predictor", default="DEP+BURST")
    parser.add_argument("--epochs", type=int, default=8,
                        help="epochs per predict request")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-delay-ms", type=float, default=1.0)
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path")
    parser.add_argument("--min-rps", type=float, default=None,
                        help="fail if requests/sec falls below this")
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed BENCH_serve.json; exit non-zero "
        "on a >50%% regression (implies --min-rps 1000)",
    )
    args = parser.parse_args(argv)

    payload = run_bench(args)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"serve bench: {payload['requests']} requests in "
        f"{payload['elapsed_s']}s -> {payload['req_per_s']} req/s, "
        f"p50 {payload['latency_ms']['p50']}ms, "
        f"p99 {payload['latency_ms']['p99']}ms, "
        f"mean batch "
        f"{payload['batch_size']['sum'] / max(1, payload['batch_size']['count']):.1f}"
    )
    print(f"wrote {out}")

    min_rps = args.min_rps
    if args.check is not None:
        baseline = json.loads(Path(args.check).read_text())
        floor = REGRESSION_FLOOR * baseline["req_per_s"]
        if min_rps is None:
            min_rps = 1000.0
        if payload["req_per_s"] < floor:
            print(
                f"REGRESSION: {payload['req_per_s']} req/s is below "
                f"{REGRESSION_FLOOR:.0%} of baseline "
                f"{baseline['req_per_s']} req/s",
                file=sys.stderr,
            )
            return 1
        print(
            f"baseline check ok: {payload['req_per_s']} req/s vs "
            f"baseline {baseline['req_per_s']} (floor {floor:.0f})"
        )
    if min_rps is not None and payload["req_per_s"] < min_rps:
        print(
            f"FAIL: {payload['req_per_s']} req/s is below the "
            f"{min_rps:.0f} req/s floor",
            file=sys.stderr,
        )
        return 1
    if payload["errors"]:
        print(f"FAIL: {payload['errors']} request errors", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
