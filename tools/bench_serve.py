"""Deadline-aware load harness for the online prediction service.

Usage::

    PYTHONPATH=src python tools/bench_serve.py                    # defaults
    PYTHONPATH=src python tools/bench_serve.py --workers 4 --clients 80
    PYTHONPATH=src python tools/bench_serve.py --check BENCH_serve.json
    PYTHONPATH=src python tools/bench_serve.py --workers 4 \
        --compare-single --min-ratio 2.5

Stands up a real worker pool (:mod:`repro.serve.pool` — one process per
worker, private unix sockets, shared prediction cache, fleet metrics)
and hammers the ``predict`` endpoint from N connections spread over
multiple client *processes* (the client side must not serialize behind
one GIL while measuring a multi-process server). Two phases:

* **closed-loop** — every connection keeps ``--pipeline`` requests in
  flight for ``--duration`` seconds; measures peak sustainable
  throughput (the back-compatible ``req_per_s``) and its latency
  distribution;
* **open-loop** — requests are *scheduled* at a fixed offered rate
  (default: 30% of the closed-loop throughput) regardless of replies;
  latency is measured from the scheduled send time, so sender backlog
  counts against the server, and every reply slower than ``--deadline-ms``
  is a deadline miss.

The payload mix replays ``--unique`` distinct predict questions, the
governor-fleet pattern the shared prediction cache exists for; the
report carries the cache hit rate and the per-worker load skew so the
numbers can't be misread as cold-compute throughput.

With ``--check BASELINE``, compares the closed-loop requests/sec
against the committed baseline and exits non-zero on a >50% regression
— the CI serve-smoke gate. ``--min-rps``, ``--max-p99-ms`` and
``--max-miss-rate`` are absolute gates; ``--compare-single`` reruns the
whole load at ``--workers 1`` and gates the multi/single throughput
ratio on ``--min-ratio``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch.counters import CounterSet  # noqa: E402
from repro.core.epochs import Epoch  # noqa: E402
from repro.serve import protocol  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.frontend import BackgroundFrontend, Frontend  # noqa: E402
from repro.serve.pool import WorkerPool  # noqa: E402
from repro.serve.server import ServeConfig  # noqa: E402

#: CI fails when requests/sec drops below this fraction of the baseline.
REGRESSION_FLOOR = 0.50


# ----------------------------------------------------------------------
# Payloads
# ----------------------------------------------------------------------


def payload_epochs(n_epochs: int = 8, n_threads: int = 4, variant: int = 0):
    """A deterministic, realistically-shaped predict payload.

    ``variant`` perturbs the counter values so distinct variants key
    differently in the prediction cache while staying the same size.
    """
    epochs = []
    t = 0.0
    for i in range(n_epochs):
        span = 200_000.0 + 25_000.0 * ((i + variant) % 3) + 7.0 * variant
        deltas = {}
        for tid in range(n_threads):
            active = span * (0.5 + 0.1 * ((i + tid + variant) % 4))
            deltas[tid] = CounterSet(
                active_ns=active,
                crit_ns=active * 0.35,
                leading_ns=active * 0.20,
                stall_ns=active * 0.30,
                sqfull_ns=active * 0.05,
                insns=int(active * 1.5),
                stores=int(active * 0.2),
            )
        epochs.append(
            Epoch(
                index=i,
                start_ns=t,
                end_ns=t + span,
                thread_deltas=deltas,
                stall_tid=(i % n_threads) if i % 2 else None,
                during_gc=False,
            )
        )
        t += span
    return epochs


def payload_templates(args) -> list:
    """Pre-encoded request frames (id appended per send) for each variant."""
    templates = []
    for variant in range(args.unique):
        frame = {
            "v": protocol.PROTOCOL_VERSION,
            "kind": "predict",
            "predictor": args.predictor,
            "across_epoch_ctp": True,
            "base_freq_ghz": 1.0,
            "target_freqs_ghz": [2.0, 3.0, 4.0],
            "epochs": [
                protocol.epoch_to_wire(e)
                for e in payload_epochs(n_epochs=args.epochs, variant=variant)
            ],
        }
        encoded = json.dumps(frame, separators=(",", ":"))
        # Drop the closing brace: senders append ',"id":<n>}\n'.
        templates.append(encoded[:-1].encode("utf-8"))
    return templates


def _frame_bytes(template: bytes, request_id: int) -> bytes:
    return template + b',"id":%d}\n' % request_id


def _reply_id(line: bytes) -> int:
    # Replies always open with {"v":1,"id":<int>, — avoid a full JSON
    # parse on the measurement path.
    start = line.index(b'"id":') + 5
    end = line.index(b",", start)
    return int(line[start:end])


# ----------------------------------------------------------------------
# Client processes
# ----------------------------------------------------------------------


async def _closed_loop_conn(endpoint, templates, pipeline, stop_at, out):
    """One connection keeping ``pipeline`` requests in flight."""
    reader, writer = await _open_conn(endpoint)
    sent: dict = {}
    latencies = out["closed_lat"]
    next_id = 0
    try:
        while time.perf_counter() < stop_at:
            while len(sent) < pipeline:
                next_id += 1
                sent[next_id] = time.perf_counter()
                writer.write(_frame_bytes(templates[next_id % len(templates)],
                                          next_id))
            await writer.drain()
            line = await reader.readline()
            if not line:
                out["errors"] += 1
                return
            latencies.append(time.perf_counter() - sent.pop(_reply_id(line)))
        # Drain what is still in flight (measured; after stop_at, so it
        # does not inflate the timed window's request count).
        while sent:
            line = await reader.readline()
            if not line:
                out["errors"] += len(sent)
                return
            sent.pop(_reply_id(line), None)
    finally:
        writer.close()


async def _open_loop_conn(endpoint, templates, rate, duration, out,
                          offset=0.0):
    """One connection sending on a fixed schedule (open loop).

    ``offset`` phase-shifts this connection's schedule so the fleet's
    sends interleave uniformly; without it every connection fires at
    the same instants and the "fixed rate" degenerates into periodic
    thundering herds that measure queue spikes, not the offered rate.
    """
    reader, writer = await _open_conn(endpoint)
    sent: dict = {}
    latencies = out["open_lat"]
    interval = 1.0 / rate
    started = time.perf_counter() + offset
    stop_at = started + duration
    next_id = 0

    async def receiver():
        while True:
            line = await reader.readline()
            if not line:
                return
            arrival = sent.pop(_reply_id(line), None)
            if arrival is not None:
                latencies.append(time.perf_counter() - arrival)

    recv_task = asyncio.get_running_loop().create_task(receiver())
    try:
        scheduled = started
        while scheduled < stop_at:
            now = time.perf_counter()
            if now < scheduled:
                await asyncio.sleep(scheduled - now)
            next_id += 1
            # Latency is charged from the *scheduled* arrival, so a
            # backlogged sender shows up as latency, not lost load.
            sent[next_id] = scheduled
            writer.write(_frame_bytes(templates[next_id % len(templates)],
                                      next_id))
            if next_id % 64 == 0:
                # Drain rarely: per-send drains cost a task switch each,
                # and send-side backlog is already charged as latency.
                await writer.drain()
            scheduled += interval
        out["open_sent"] += next_id
        # Grace period for stragglers; unanswered requests count as
        # deadline misses via open_unanswered.
        grace = time.perf_counter() + 2.0
        while sent and time.perf_counter() < grace:
            await asyncio.sleep(0.01)
        out["open_unanswered"] += len(sent)
    finally:
        recv_task.cancel()
        writer.close()


async def _open_conn(endpoint):
    kind, target = endpoint
    if kind == "unix":
        return await asyncio.open_unix_connection(target)
    host, port = target
    return await asyncio.open_connection(host, port)


async def _client_proc_async(endpoints, templates, args, phase, rate,
                             offsets, out):
    stop_at = time.perf_counter() + args.duration
    if phase == "closed":
        tasks = [
            _closed_loop_conn(endpoint, templates, args.pipeline, stop_at, out)
            for endpoint in endpoints
        ]
    else:
        per_conn_rate = rate / len(endpoints)
        tasks = [
            _open_loop_conn(endpoint, templates, per_conn_rate,
                            args.duration, out, offset=offset)
            for endpoint, offset in zip(endpoints, offsets)
        ]
    await asyncio.gather(*tasks)


def _client_main(endpoints, templates, args, phase, rate, offsets,
                 queue) -> None:
    """Entry point of one client process (fork or spawn safe)."""
    out = {"closed_lat": [], "open_lat": [], "errors": 0,
           "open_sent": 0, "open_unanswered": 0}
    try:
        asyncio.run(_client_proc_async(
            endpoints, templates, args, phase, rate, offsets, out
        ))
    except Exception:
        out["errors"] += len(endpoints)
    queue.put(out)


def _run_phase(endpoints, templates, args, phase, rate=None):
    """Fan one load phase out over client processes; merge their results."""
    n_procs = min(args.client_procs, len(endpoints))
    groups = [endpoints[i::n_procs] for i in range(n_procs)]
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    queue = context.Queue()
    per_proc_rate = (rate / n_procs) if rate else None
    processes = []
    started = time.perf_counter()
    for i, group in enumerate(groups):
        group_rate = (
            per_proc_rate * (len(group) * n_procs / len(endpoints))
            if per_proc_rate else None
        )
        # Interleave the fleet's schedules: connection with global index
        # g fires at g/rate, g/rate + n/rate, ... so the offered load is
        # uniform in time instead of synchronized bursts of --clients.
        offsets = (
            [(i + j * n_procs) / rate for j in range(len(group))]
            if rate else None
        )
        process = context.Process(
            target=_client_main,
            args=(group, templates, args, phase, group_rate, offsets, queue),
            daemon=True,
        )
        process.start()
        processes.append(process)
    merged = {"closed_lat": [], "open_lat": [], "errors": 0,
              "open_sent": 0, "open_unanswered": 0}
    for _ in processes:
        out = queue.get()
        merged["closed_lat"].extend(out["closed_lat"])
        merged["open_lat"].extend(out["open_lat"])
        for key in ("errors", "open_sent", "open_unanswered"):
            merged[key] += out[key]
    for process in processes:
        process.join()
    merged["elapsed_s"] = time.perf_counter() - started
    return merged


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def latency_summary(latencies) -> dict:
    """min/mean/p50/p99/p99.9/max plus the two jitter measures."""
    values = sorted(latencies)
    if not values:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "p50": 0.0,
                "p99": 0.0, "p999": 0.0, "max": 0.0, "stddev_ms": 0.0,
                "jitter_p99_p50": 0.0}
    p50 = _quantile(values, 0.50)
    p99 = _quantile(values, 0.99)
    return {
        "min": round(values[0] * 1e3, 3),
        "mean": round(sum(values) / len(values) * 1e3, 3),
        "median": round(p50 * 1e3, 3),
        "p50": round(p50 * 1e3, 3),
        "p99": round(p99 * 1e3, 3),
        "p999": round(_quantile(values, 0.999) * 1e3, 3),
        "max": round(values[-1] * 1e3, 3),
        "stddev_ms": round(
            statistics.pstdev(values) * 1e3 if len(values) > 1 else 0.0, 3
        ),
        "jitter_p99_p50": round((p99 - p50) * 1e3, 3),
    }


def _worker_predict_counts(pool: WorkerPool) -> dict:
    """Exact predict-requests per worker, asked of each worker directly."""
    counts = {}
    for worker_id in range(pool.n_workers):
        with ServeClient.connect(**pool.worker_endpoint(worker_id)) as probe:
            snapshot = probe.stats()
            endpoint = (snapshot.get("endpoints") or {}).get("predict") or {}
            counts[str(worker_id)] = int(endpoint.get("requests", 0))
    return counts


def load_skew(counts: dict) -> float:
    """max/mean per-worker load; 1.0 = perfectly balanced."""
    values = list(counts.values())
    if not values or sum(values) == 0:
        return 0.0
    return round(max(values) / (sum(values) / len(values)), 3)


# ----------------------------------------------------------------------
# The bench
# ----------------------------------------------------------------------


def bench_endpoints(pool, args):
    """(kind, target) connection tuples for every client connection."""
    if args.topology == "direct":
        paths = pool.worker_paths()
        return [("unix", paths[i % len(paths)]) for i in range(args.clients)]
    if args.topology == "frontend":
        return [("unix", pool.base.socket_path)] * args.clients
    return [("tcp", (pool.base.host, pool.base.port))] * args.clients


def run_load(args, n_workers: int) -> dict:
    """Run both phases against an ``n_workers`` pool; return the report."""
    templates = payload_templates(args)
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        if args.topology == "tcp":
            serve_config = ServeConfig(
                host="127.0.0.1",
                max_batch=args.max_batch,
                max_delay_s=args.max_delay_ms / 1000.0,
                predict_cache_mem=args.cache_mem,
            )
        else:
            serve_config = ServeConfig(
                socket_path=os.path.join(tmp, "serve.sock"),
                max_batch=args.max_batch,
                max_delay_s=args.max_delay_ms / 1000.0,
                predict_cache_mem=args.cache_mem,
            )
        pool = WorkerPool(serve_config, n_workers,
                          shared_cache=args.cache_mem > 0 and n_workers > 1)
        frontend = None
        pool.start()
        try:
            if args.topology == "frontend":
                frontend = BackgroundFrontend(Frontend(
                    pool.worker_paths(),
                    socket_path=serve_config.socket_path,
                ))
                frontend.start()
            endpoints = bench_endpoints(pool, args)
            # Warm every unique payload through each worker so the timed
            # phases measure the steady state the cache is built for.
            for worker_id in range(pool.n_workers):
                with ServeClient.connect(
                    **pool.worker_endpoint(worker_id)
                ) as warm:
                    for i, template in enumerate(templates):
                        warm.send_raw(_frame_bytes(template, i + 1))
                        warm.read_reply()
            # The closed-loop phase measures peak sustainable throughput
            # at a *bounded* concurrency (in-flight = connections x
            # pipeline; Little's law says the latency floor scales with
            # it). The open-loop phase then drives the full --clients
            # connection count at a fixed offered rate.
            closed_n = min(args.closed_clients or len(endpoints),
                           len(endpoints))
            closed = _run_phase(endpoints[:closed_n], templates, args,
                                "closed")
            requests = len(closed["closed_lat"])
            req_per_s = requests / closed["elapsed_s"]
            offered = args.rate or req_per_s * 0.3
            open_phase = _run_phase(endpoints, templates, args, "open",
                                    rate=offered)
            per_worker = _worker_predict_counts(pool)
            with ServeClient.connect(**pool.worker_endpoint(0)) as reader:
                stats = reader.stats()
        finally:
            if frontend is not None:
                frontend.stop()
            pool.stop()

    deadline_s = args.deadline_ms / 1000.0
    open_lat = open_phase["open_lat"]
    open_answered = len(open_lat)
    open_misses = (
        sum(1 for v in open_lat if v > deadline_s)
        + open_phase["open_unanswered"]
    )
    fleet_cache = (stats.get("fleet") or stats).get("predict_cache", {})
    cache_lookups = fleet_cache.get("hits", 0) + fleet_cache.get("misses", 0)
    return {
        "benchmark": "serve_predict",
        "config": {
            "workers": n_workers,
            "topology": args.topology,
            "clients": args.clients,
            "closed_clients": closed_n,
            "client_procs": min(args.client_procs, args.clients),
            "pipeline": args.pipeline,
            "duration_s": args.duration,
            "predictor": args.predictor,
            "max_batch": args.max_batch,
            "max_delay_ms": args.max_delay_ms,
            "epochs_per_request": args.epochs,
            "unique_payloads": args.unique,
            "cache_mem": args.cache_mem,
            "deadline_ms": args.deadline_ms,
            "scale": float(os.environ.get("REPRO_SCALE", "1.0")),
        },
        "elapsed_s": round(closed["elapsed_s"], 3),
        "requests": requests,
        "errors": closed["errors"] + open_phase["errors"],
        "req_per_s": round(req_per_s, 1),
        "latency_ms": latency_summary(closed["closed_lat"]),
        "open_loop": {
            "offered_rps": round(offered, 1),
            "sent": open_phase["open_sent"],
            "answered": open_answered,
            "unanswered": open_phase["open_unanswered"],
            "achieved_rps": round(
                open_answered / open_phase["elapsed_s"], 1
            ) if open_phase["elapsed_s"] else 0.0,
            "deadline_ms": args.deadline_ms,
            "deadline_misses": open_misses,
            "deadline_miss_rate": round(
                open_misses / max(1, open_phase["open_sent"]), 6
            ),
            "latency_ms": latency_summary(open_lat),
        },
        "cache": {
            "hits": fleet_cache.get("hits", 0),
            "misses": fleet_cache.get("misses", 0),
            "stores": fleet_cache.get("stores", 0),
            "hit_rate": round(
                fleet_cache.get("hits", 0) / cache_lookups, 4
            ) if cache_lookups else 0.0,
        },
        "per_worker_predict_requests": per_worker,
        "load_skew": load_skew(per_worker),
        "batch_size": stats["batch_size"],
        "server_overloaded": stats["overloaded"],
    }


def run_bench(args) -> dict:
    """Run the configured load (and the single-worker reference if asked)."""
    payload = run_load(args, args.workers)
    if args.compare_single and args.workers > 1:
        single = run_load(args, 1)
        payload["single_worker"] = {
            "req_per_s": single["req_per_s"],
            "p99_ms": single["latency_ms"]["p99"],
            "deadline_miss_rate":
                single["open_loop"]["deadline_miss_rate"],
        }
        payload["throughput_ratio"] = round(
            payload["req_per_s"] / max(1e-9, single["req_per_s"]), 3
        )
    return payload


# ----------------------------------------------------------------------
# Gates / CLI
# ----------------------------------------------------------------------


def check_gates(payload, args) -> int:
    failures = []
    min_rps = args.min_rps
    if args.check is not None:
        baseline = json.loads(Path(args.check).read_text())
        floor = REGRESSION_FLOOR * baseline["req_per_s"]
        if min_rps is None:
            min_rps = 1000.0
        if payload["req_per_s"] < floor:
            failures.append(
                f"REGRESSION: {payload['req_per_s']} req/s is below "
                f"{REGRESSION_FLOOR:.0%} of baseline "
                f"{baseline['req_per_s']} req/s"
            )
        else:
            print(
                f"baseline check ok: {payload['req_per_s']} req/s vs "
                f"baseline {baseline['req_per_s']} (floor {floor:.0f})"
            )
    if min_rps is not None and payload["req_per_s"] < min_rps:
        failures.append(
            f"FAIL: {payload['req_per_s']} req/s is below the "
            f"{min_rps:.0f} req/s floor"
        )
    if args.max_p99_ms is not None and \
            payload["latency_ms"]["p99"] > args.max_p99_ms:
        failures.append(
            f"FAIL: closed-loop p99 {payload['latency_ms']['p99']}ms "
            f"exceeds {args.max_p99_ms}ms"
        )
    if args.max_miss_rate is not None and \
            payload["open_loop"]["deadline_miss_rate"] > args.max_miss_rate:
        failures.append(
            f"FAIL: deadline-miss rate "
            f"{payload['open_loop']['deadline_miss_rate']} exceeds "
            f"{args.max_miss_rate}"
        )
    if args.min_ratio is not None:
        ratio = payload.get("throughput_ratio")
        if ratio is None:
            failures.append(
                "FAIL: --min-ratio needs --compare-single and --workers > 1"
            )
        elif ratio < args.min_ratio:
            failures.append(
                f"FAIL: multi/single throughput ratio {ratio} is below "
                f"{args.min_ratio}"
            )
        else:
            print(f"ratio check ok: {ratio}x multi/single throughput")
    if payload["errors"]:
        failures.append(f"FAIL: {payload['errors']} request errors")
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker processes")
    parser.add_argument("--topology", default="direct",
                        choices=("direct", "frontend", "tcp"),
                        help="how clients reach workers: direct per-worker "
                        "unix sockets, the routing frontend, or a shared "
                        "SO_REUSEPORT TCP port")
    parser.add_argument("--clients", type=int, default=80,
                        help="concurrent client connections "
                        "(open-loop phase)")
    parser.add_argument("--closed-clients", type=int, default=8,
                        help="connections the closed-loop phase drives "
                        "(bounds in-flight = closed-clients x pipeline; "
                        "0 means all --clients)")
    parser.add_argument("--client-procs", type=int, default=4,
                        help="client processes the connections spread over")
    parser.add_argument("--pipeline", type=int, default=6,
                        help="in-flight requests per connection "
                        "(closed-loop phase)")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="measurement window per phase in seconds")
    parser.add_argument("--rate", type=float, default=None,
                        help="open-loop offered rate in req/s "
                        "(default: 30%% of the closed-loop throughput)")
    parser.add_argument("--deadline-ms", type=float, default=10.0,
                        help="per-request deadline for the open-loop phase")
    parser.add_argument("--predictor", default="DEP+BURST")
    parser.add_argument("--epochs", type=int, default=8,
                        help="epochs per predict request")
    parser.add_argument("--unique", type=int, default=64,
                        help="distinct predict payloads in the replay mix")
    parser.add_argument("--cache-mem", type=int, default=4096,
                        help="per-worker prediction-cache LRU entries "
                        "(0 disables caching)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-delay-ms", type=float, default=1.0)
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path")
    parser.add_argument("--min-rps", type=float, default=None,
                        help="fail if requests/sec falls below this")
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="fail if closed-loop p99 exceeds this")
    parser.add_argument("--max-miss-rate", type=float, default=None,
                        help="fail if the open-loop deadline-miss rate "
                        "exceeds this fraction")
    parser.add_argument("--compare-single", action="store_true",
                        help="also run the load at --workers 1 and report "
                        "the throughput ratio")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail if multi/single throughput ratio is "
                        "below this (needs --compare-single)")
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed BENCH_serve.json; exit non-zero "
        "on a >50%% regression (implies --min-rps 1000)",
    )
    args = parser.parse_args(argv)
    if args.topology == "frontend" and args.workers < 1:
        parser.error("--topology frontend needs --workers >= 1")

    payload = run_bench(args)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    open_loop = payload["open_loop"]
    print(
        f"serve bench [{payload['config']['workers']} workers, "
        f"{payload['config']['topology']}]: "
        f"{payload['requests']} requests in {payload['elapsed_s']}s -> "
        f"{payload['req_per_s']} req/s, "
        f"p50 {payload['latency_ms']['p50']}ms, "
        f"p99 {payload['latency_ms']['p99']}ms, "
        f"p99.9 {payload['latency_ms']['p999']}ms, "
        f"cache hit rate {payload['cache']['hit_rate']:.1%}, "
        f"load skew {payload['load_skew']}"
    )
    print(
        f"open loop: offered {open_loop['offered_rps']} req/s, "
        f"achieved {open_loop['achieved_rps']} req/s, "
        f"p99 {open_loop['latency_ms']['p99']}ms, "
        f"jitter (p99-p50) {open_loop['latency_ms']['jitter_p99_p50']}ms, "
        f"miss rate {open_loop['deadline_miss_rate']:.2%} "
        f"@ {open_loop['deadline_ms']}ms deadline"
    )
    if "throughput_ratio" in payload:
        print(
            f"single-worker reference: "
            f"{payload['single_worker']['req_per_s']} req/s "
            f"(ratio {payload['throughput_ratio']}x)"
        )
    print(f"wrote {out}")
    return check_gates(payload, args)


if __name__ == "__main__":
    raise SystemExit(main())
