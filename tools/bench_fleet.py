"""Fleet stepping benchmark: batched vs naive per-tenant profile builds.

Usage::

    PYTHONPATH=src python tools/bench_fleet.py                   # full scale
    PYTHONPATH=src python tools/bench_fleet.py --tenants 64 --reps 1
    python tools/bench_fleet.py --check BENCH_fleet.json         # CI gate

Times how long stepping a drawn fleet's profiles takes two ways (see
``repro.fleet.fleet_bench``): the batched path — tenants deduplicated
into distinct shapes, simulated through ``repro.sim.batch`` with one
shared timing store per workload family — versus the naive path that
simulates every tenant independently. Both stores then drive one full
engine run each and the reports must be byte-identical on the
determinism view; the run aborts otherwise, so the speedup is pure
mechanics.

``BENCH_fleet.json`` commits the result. With ``--check BASELINE`` a
fresh run is compared against the committed baseline and exits non-zero
when the speedup falls below 70% of baseline *and* below the 2x
absolute floor this PR guarantees — the CI bench-fleet gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.fleet_bench import fleet_bench  # noqa: E402

#: CI fails when the speedup drops below this fraction of the baseline...
REGRESSION_FLOOR = 0.70
#: ...unless it still clears the absolute floor the issue guarantees.
ABSOLUTE_FLOOR = 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=128,
                        help="fleet size to draw (default 128)")
    parser.add_argument("--seed", type=int, default=7,
                        help="tenant-draw seed (default 7)")
    parser.add_argument("--reps", type=int, default=2,
                        help="build repetitions per side (default 2; the "
                             "gated speedup uses the medians)")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output JSON path")
    parser.add_argument(
        "--check", metavar="BASELINE_JSON", default=None,
        help="compare the speedup against a committed baseline file; "
             "exit 1 on a >30%% regression below the absolute floor",
    )
    args = parser.parse_args(argv)

    payload = fleet_bench(
        tenants=args.tenants, seed=args.seed, reps=args.reps
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"fleet {payload['tenants']} tenants -> {payload['profiles']} "
        f"profiles in {payload['groups']} groups: naive "
        f"{payload['unbatched_build_s']['median']:.3f}s -> batched "
        f"{payload['batched_build_s']['median']:.3f}s = "
        f"{payload['speedup']:.2f}x (engine {payload['engine_wall_s']:.3f}s,"
        f" {payload['tenants_per_s']:.1f} tenants/s, reports identical)"
    )
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        ratio = payload["speedup"] / baseline["speedup"]
        print(
            f"speedup {payload['speedup']:.2f}x vs baseline "
            f"{baseline['speedup']:.2f}x = {ratio:.2f} "
            f"(ratio floor {REGRESSION_FLOOR:.2f}, "
            f"absolute floor {ABSOLUTE_FLOOR:.1f}x)"
        )
        if ratio < REGRESSION_FLOOR and payload["speedup"] < ABSOLUTE_FLOOR:
            print("FAIL: fleet batching speedup regressed by more than 30%")
            return 1
        print("ok: within regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
