"""Fleet build benchmark: naive vs batched vs multiprocess vs warm store.

Usage::

    PYTHONPATH=src python tools/bench_fleet.py                   # full scale
    PYTHONPATH=src python tools/bench_fleet.py --tenants 96 --reps 1
    python tools/bench_fleet.py --check BENCH_fleet.json         # CI gate

Times one drawn fleet's profile build through every strategy the engine
offers (see ``repro.fleet.fleet_bench``): the naive per-tenant loop, the
deduplicated serial batch, the ``--jobs``-wide multiprocess build
publishing into the persistent profile store, and a warm rebuild from
that store. Every store then drives one full engine run and the reports
must be byte-identical on the determinism view; the run aborts
otherwise, so every speedup is pure mechanics.

``BENCH_fleet.json`` commits the result, with cold and warm wall times
recorded separately (``cold_run_s``/``warm_run_s``) and min/median/mean
stats for every phase including the engine. With ``--check BASELINE``
a fresh run is gated two ways:

* ``cold_speedup`` (naive -> parallel cold build) must clear the 3x
  absolute floor this PR guarantees;
* ``warm_speedup`` (serial cold build -> warm store rebuild) must
  clear the 5x absolute floor;

and each is additionally compared against the committed baseline:
dropping below 70% of baseline is a warning while still above the
floor, a failure otherwise (machines differ; the floors are the
contract).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.fleet_bench import fleet_bench  # noqa: E402

#: CI fails when a gated speedup drops below this fraction of baseline...
REGRESSION_FLOOR = 0.70
#: ...or below its absolute floor.
COLD_ABSOLUTE_FLOOR = 3.0
WARM_ABSOLUTE_FLOOR = 5.0


def _gate(name: str, value: float, baseline: float, floor: float) -> bool:
    """Print one gate's verdict; True when it passes."""
    ratio = value / baseline if baseline else float("inf")
    print(
        f"{name} {value:.2f}x vs baseline {baseline:.2f}x = {ratio:.2f} "
        f"(ratio floor {REGRESSION_FLOOR:.2f}, absolute floor {floor:.1f}x)"
    )
    if value < floor:
        print(f"FAIL: {name} below the {floor:.1f}x absolute floor")
        return False
    if ratio < REGRESSION_FLOOR:
        print(f"warning: {name} more than 30% below baseline "
              "(still above the absolute floor)")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=512,
                        help="fleet size to draw (default 512)")
    parser.add_argument("--seed", type=int, default=7,
                        help="tenant-draw seed (default 7)")
    parser.add_argument("--reps", type=int, default=1,
                        help="repetitions per build phase (default 1; the "
                             "gated speedups use the medians)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers of the parallel build phase "
                             "(default 4)")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output JSON path")
    parser.add_argument(
        "--check", metavar="BASELINE_JSON", default=None,
        help="gate cold_speedup/warm_speedup against their absolute "
             "floors and a committed baseline file; exit 1 on failure",
    )
    args = parser.parse_args(argv)

    payload = fleet_bench(
        tenants=args.tenants, seed=args.seed, reps=args.reps, jobs=args.jobs
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"fleet {payload['tenants']} tenants -> {payload['profiles']} "
        f"profiles in {payload['groups']} groups: naive "
        f"{payload['naive_build_s']['median']:.3f}s -> serial "
        f"{payload['serial_build_s']['median']:.3f}s -> parallel[x"
        f"{payload['jobs']}] {payload['parallel_build_s']['median']:.3f}s "
        f"-> warm {payload['warm_build_s']['median']:.3f}s"
    )
    print(
        f"cold_speedup {payload['cold_speedup']:.2f}x, warm_speedup "
        f"{payload['warm_speedup']:.2f}x (engine "
        f"{payload['engine_s']['median']:.3f}s, cold run "
        f"{payload['cold_run_s']:.3f}s, warm run "
        f"{payload['warm_run_s']:.3f}s, reports identical)"
    )
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        ok = _gate(
            "cold_speedup", payload["cold_speedup"],
            baseline["cold_speedup"], COLD_ABSOLUTE_FLOOR,
        )
        ok = _gate(
            "warm_speedup", payload["warm_speedup"],
            baseline["warm_speedup"], WARM_ABSOLUTE_FLOOR,
        ) and ok
        if not ok:
            return 1
        print("ok: both speedups above their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
