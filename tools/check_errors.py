"""Calibration helper: per-benchmark prediction errors (Figure 3 shape).

Usage: python tools/check_errors.py [scale] [bench ...]
"""

import sys

from repro import get_benchmark, simulate, make_predictor
from repro.workloads.dacapo import TABLE1_EXPECTED

MODELS = ("M+CRIT", "M+CRIT+BURST", "COOP", "COOP+BURST", "DEP", "DEP+BURST")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    names = sys.argv[2:] or list(TABLE1_EXPECTED)
    rows_up = {m: [] for m in MODELS + ("DEP+BURST/pe",)}
    rows_dn = {m: [] for m in MODELS + ("DEP+BURST/pe",)}
    for name in names:
        bundle = get_benchmark(name, scale=scale)
        runs = {
            f: simulate(bundle.program, f, jvm_config=bundle.jvm_config,
                        gc_model=bundle.gc_model)
            for f in (1.0, 4.0)
        }
        shares = {}
        for f, res in runs.items():
            agg = None
            for c in res.trace.final_counters().values():
                agg = c if agg is None else agg + c
            span = res.total_ns
            shares[f] = (agg.sqfull_ns / 4 / span, agg.crit_ns / 4 / span,
                         agg.active_ns / 4 / span)
        print(f"-- {name}: 1GHz={runs[1.0].total_ms:.0f}ms 4GHz={runs[4.0].total_ms:.0f}ms "
              f"speedup={runs[1.0].total_ns/runs[4.0].total_ns:.2f}x gc%={runs[1.0].gc_fraction:.0%} "
              f"| sq/crit/busy 1GHz={shares[1.0][0]:.0%}/{shares[1.0][1]:.0%}/{shares[1.0][2]:.0%} "
              f"4GHz={shares[4.0][0]:.0%}/{shares[4.0][1]:.0%}/{shares[4.0][2]:.0%}")
        for m in MODELS:
            p = make_predictor(m)
            e_up = p.predict_total_ns(runs[1.0].trace, 4.0) / runs[4.0].total_ns - 1
            e_dn = p.predict_total_ns(runs[4.0].trace, 1.0) / runs[1.0].total_ns - 1
            rows_up[m].append(e_up); rows_dn[m].append(e_dn)
            print(f"   {m:14s} 1->4: {e_up:+7.1%}   4->1: {e_dn:+7.1%}")
        pe = make_predictor("DEP+BURST", across_epoch_ctp=False)
        e_up = pe.predict_total_ns(runs[1.0].trace, 4.0) / runs[4.0].total_ns - 1
        e_dn = pe.predict_total_ns(runs[4.0].trace, 1.0) / runs[1.0].total_ns - 1
        rows_up["DEP+BURST/pe"].append(e_up); rows_dn["DEP+BURST/pe"].append(e_dn)
        print(f"   {'DEP+BURST/pe':14s} 1->4: {e_up:+7.1%}   4->1: {e_dn:+7.1%}")
    print("\n== mean |err| ==      1->4GHz   4->1GHz   (paper: M+CRIT 27%/70%, DEP+BURST 6%/8%)")
    for m in MODELS + ("DEP+BURST/pe",):
        up = sum(abs(e) for e in rows_up[m]) / len(rows_up[m])
        dn = sum(abs(e) for e in rows_dn[m]) / len(rows_dn[m])
        print(f"   {m:14s} {up:8.1%} {dn:9.1%}")


if __name__ == "__main__":
    main()
