"""Sweep-engine benchmark: simulate-once / predict-many vs the scalar loops.

Usage::

    PYTHONPATH=src python tools/bench_sweep.py                    # full scale
    REPRO_SCALE=0.2 PYTHONPATH=src python tools/bench_sweep.py --reps 3
    python tools/bench_sweep.py --check BENCH_sweep.json          # CI gate

Times the two prediction workloads the sweep engine (``repro.core.sweep``)
exists for, each against its pre-PR scalar equivalent on identical inputs:

* **figures** — the fig3-style error grid: every predictor × every target
  frequency in both directions over each benchmark's base traces. The
  scalar side calls ``predict_total_ns`` per (predictor, target) pair,
  re-walking the event list each time; the sweep side decomposes each
  trace once (cold — caches cleared per rep) and runs the frequency
  kernels.
* **governor** — the per-quantum candidate sweep: an
  ``EnergyManagerSession`` stepped over a managed run's interval records,
  scoring the full V/f table (25 set points) per quantum either in one
  kernel call (``sweep=True``) or one ``predict_epochs`` per candidate
  (``sweep=False``).

Both sides produce bit-identical predictions (the ``sweep-scalar-identity``
differential invariant and ``tests/core/test_sweep.py`` pin that); this
benchmark records the speedup and ``BENCH_sweep.json`` commits it. With
``--check BASELINE``, a fresh run's speedups are compared against the
committed baseline and the run exits non-zero on a >30% regression — the
CI bench-sweep gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch.specs import haswell_i7_4770k  # noqa: E402
from repro.core.predictors import make_predictor, predictor_names  # noqa: E402
from repro.core.sweep import TraceSweep  # noqa: E402
from repro.energy.manager import (  # noqa: E402
    EnergyManager,
    EnergyManagerSession,
    ManagerConfig,
    interval_epochs,
)
from repro.sim.bench import wall_stats  # noqa: E402
from repro.sim.run import simulate, simulate_managed  # noqa: E402
from repro.workloads.dacapo import build_dacapo  # noqa: E402

#: CI fails when a speedup drops below this fraction of the baseline...
REGRESSION_FLOOR = 0.70
#: ...unless it still clears the absolute speedup this PR guarantees
#: (reduced-scale CI runs sit closer to the fixed overheads than the
#: committed full-scale baseline, so the ratio alone would be noisy).
ABSOLUTE_FLOORS = {"figures_grid": 3.0, "governor_quantum": 5.0}

#: The fig3 grid: (base GHz, targets GHz) in both directions.
DIRECTIONS = (
    (1.0, (1.5, 2.0, 2.5, 3.0, 3.5, 4.0)),
    (4.0, (1.0, 1.5, 2.0, 2.5, 3.0, 3.5)),
)


def _figures_inputs(benchmarks, scale):
    """Base traces of the error-grid workload (built outside the timing)."""
    traces = []
    for benchmark in benchmarks:
        program = build_dacapo(benchmark, scale)
        for base, targets in DIRECTIONS:
            traces.append((simulate(program, base).trace, list(targets)))
    return traces


def _time_figures(traces, reps):
    """(scalar walls, sweep walls, predictions checked equal)."""
    predictors = [make_predictor(name) for name in predictor_names()]
    scalar_walls, sweep_walls = [], []
    scalar_out = sweep_out = None
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        scalar_out = [
            [
                [predictor.predict_total_ns(trace, t) for t in targets]
                for predictor in predictors
            ]
            for trace, targets in traces
        ]
        scalar_walls.append(time.perf_counter() - start)
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        # Cold: a fresh TraceSweep per rep, so each rep pays one full
        # columnar decomposition per trace — the real cost a figure
        # driver pays on its first request.
        sweep_out = [
            [
                TraceSweep(trace).predict(predictor, targets)
                for predictor in predictors
            ]
            for trace, targets in traces
        ]
        sweep_walls.append(time.perf_counter() - start)
    if scalar_out != sweep_out:
        raise SystemExit("FATAL: sweep and scalar figure grids diverge")
    return scalar_walls, sweep_walls


def _governor_inputs(benchmarks, scale, quantum_ns):
    """Pre-extracted (record, epochs) steps of real managed runs."""
    spec = haswell_i7_4770k()
    config = ManagerConfig(tolerable_slowdown=0.10)
    steps = []
    for benchmark in benchmarks:
        program = build_dacapo(benchmark, scale)
        manager = EnergyManager(spec, config)
        trace = simulate_managed(
            program, manager, spec=spec, quantum_ns=quantum_ns
        ).trace
        for record in trace.intervals[:-1]:
            steps.append((record, interval_epochs(record, trace)))
    return spec, config, steps


def _time_governor(spec, config, steps, reps):
    """(scalar walls, sweep walls, decisions checked equal)."""
    walls = {True: [], False: []}
    logs = {}
    for sweep in (False, True):
        for _ in range(max(1, reps)):
            session = EnergyManagerSession(
                spec, config, predictor=make_predictor("DEP+BURST"),
                sweep=sweep,
            )
            start = time.perf_counter()
            for record, epochs in steps:
                session.step(record, epochs)
            walls[sweep].append(time.perf_counter() - start)
            logs[sweep] = [
                (d.interval_index, d.base_freq_ghz, d.chosen_freq_ghz,
                 d.predicted_slowdown)
                for d in session.decisions
            ]
    if logs[True] != logs[False]:
        raise SystemExit("FATAL: sweep and scalar governor decisions diverge")
    return walls[False], walls[True]


def _entry(name, scalar_walls, sweep_walls, detail):
    scalar, sweep = wall_stats(scalar_walls), wall_stats(sweep_walls)
    return {
        "workload": name,
        **detail,
        "scalar_wall_s": scalar["min"],
        "sweep_wall_s": sweep["min"],
        "scalar_wall_stats_s": scalar,
        "sweep_wall_stats_s": sweep,
        "speedup": scalar["min"] / sweep["min"],
    }


def run_bench(benchmarks, scale, reps, quantum_ns):
    """The BENCH_sweep.json payload."""
    traces = _figures_inputs(benchmarks, scale)
    fig_scalar, fig_sweep = _time_figures(traces, reps)
    n_preds = len(predictor_names()) * sum(len(t) for _, t in traces)
    figures = _entry(
        "figures_grid", fig_scalar, fig_sweep,
        {"traces": len(traces), "predictions": n_preds},
    )
    spec, config, steps = _governor_inputs(benchmarks, scale, quantum_ns)
    gov_scalar, gov_sweep = _time_governor(spec, config, steps, reps)
    governor = _entry(
        "governor_quantum", gov_scalar, gov_sweep,
        {"quanta": len(steps), "candidates": len(spec.frequencies())},
    )
    return {
        "benchmark": "sweep_engine",
        "benchmarks": list(benchmarks),
        "scale": scale,
        "reps": reps,
        "quantum_ns": quantum_ns,
        "predictors": list(predictor_names()),
        "results": [figures, governor],
        "pipeline_speedup": (
            (figures["scalar_wall_s"] + governor["scalar_wall_s"])
            / (figures["sweep_wall_s"] + governor["sweep_wall_s"])
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_SCALE", "1.0")),
        help="workload length scale (default REPRO_SCALE or 1.0)",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=["xalan", "lusearch"],
        help="DaCapo models to sweep (default: xalan lusearch)",
    )
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per side (headline numbers use "
                             "the min; min/median/mean are all recorded)")
    parser.add_argument("--quantum-ns", type=float, default=1.0e6,
                        help="governor quantum length")
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output JSON path")
    parser.add_argument(
        "--check", metavar="BASELINE_JSON", default=None,
        help="compare each workload's speedup against a committed baseline "
             "file; exit 1 on a >30%% regression",
    )
    args = parser.parse_args(argv)

    payload = run_bench(
        args.benchmarks, args.scale, args.reps, args.quantum_ns
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for entry in payload["results"]:
        print(
            f"{entry['workload']:>16}: scalar {entry['scalar_wall_s']:.3f}s "
            f"-> sweep {entry['sweep_wall_s']:.3f}s "
            f"= {entry['speedup']:.2f}x"
        )
    print(f"pipeline speedup: {payload['pipeline_speedup']:.2f}x")
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        base_by_name = {e["workload"]: e for e in baseline["results"]}
        failed = False
        for entry in payload["results"]:
            base = base_by_name.get(entry["workload"])
            if base is None:
                continue
            ratio = entry["speedup"] / base["speedup"]
            floor = ABSOLUTE_FLOORS.get(entry["workload"], 0.0)
            print(
                f"{entry['workload']}: speedup {entry['speedup']:.2f}x vs "
                f"baseline {base['speedup']:.2f}x = {ratio:.2f} "
                f"(ratio floor {REGRESSION_FLOOR:.2f}, "
                f"absolute floor {floor:.1f}x)"
            )
            if ratio < REGRESSION_FLOOR and entry["speedup"] < floor:
                failed = True
        if failed:
            print("FAIL: sweep speedup regressed by more than 30%")
            return 1
        print("ok: within regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
