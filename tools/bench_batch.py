"""Batched-simulation benchmark: simulate_batch vs 32 sequential runs.

Usage::

    PYTHONPATH=src python tools/bench_batch.py                    # full scale
    REPRO_SCALE=0.5 PYTHONPATH=src python tools/bench_batch.py --reps 3
    python tools/bench_batch.py --check BENCH_batch.json          # CI gate

Times the pinned 32-instance corpus (four synthetic memory-heavy
families × eight chip set points; see ``repro.sim.batch_bench``) two
ways: one :func:`repro.sim.run.simulate` call per instance (the pre-batch
cost of a figure grid or fuzz corpus) versus one
:func:`repro.sim.batch.simulate_batch` call for the whole corpus. Both
sides produce byte-identical traces — the run aborts with FATAL if not —
so the only thing measured is where the time goes.

``BENCH_batch.json`` commits the result. With ``--check BASELINE`` a
fresh run is compared against the committed baseline and the run exits
non-zero when the speedup falls below 70% of baseline *and* below the
3x absolute floor this PR guarantees — the CI bench-batch gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.batch_bench import bench_payload  # noqa: E402

#: CI fails when the speedup drops below this fraction of the baseline...
REGRESSION_FLOOR = 0.70
#: ...unless it still clears the absolute floor the issue guarantees.
ABSOLUTE_FLOORS = {"batch_corpus_32": 3.0}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_SCALE", "1.0")),
        help="workload length scale (default REPRO_SCALE or 1.0)",
    )
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per side (headline numbers use "
                             "the min; min/median/mean are all recorded)")
    parser.add_argument("--out", default="BENCH_batch.json",
                        help="output JSON path")
    parser.add_argument(
        "--check", metavar="BASELINE_JSON", default=None,
        help="compare the corpus speedup against a committed baseline "
             "file; exit 1 on a >30%% regression below the absolute floor",
    )
    args = parser.parse_args(argv)

    payload = bench_payload(scale=args.scale, reps=args.reps)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for entry in payload["results"]:
        print(
            f"{entry['workload']:>16}: sequential "
            f"{entry['sequential_wall_s']:.3f}s -> batch "
            f"{entry['batch_wall_s']:.3f}s = {entry['speedup']:.2f}x "
            f"({entry['instances']} instances)"
        )
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        base_by_name = {e["workload"]: e for e in baseline["results"]}
        failed = False
        for entry in payload["results"]:
            base = base_by_name.get(entry["workload"])
            if base is None:
                continue
            ratio = entry["speedup"] / base["speedup"]
            floor = ABSOLUTE_FLOORS.get(entry["workload"], 0.0)
            print(
                f"{entry['workload']}: speedup {entry['speedup']:.2f}x vs "
                f"baseline {base['speedup']:.2f}x = {ratio:.2f} "
                f"(ratio floor {REGRESSION_FLOOR:.2f}, "
                f"absolute floor {floor:.1f}x)"
            )
            if ratio < REGRESSION_FLOOR and entry["speedup"] < floor:
                failed = True
        if failed:
            print("FAIL: batch speedup regressed by more than 30%")
            return 1
        print("ok: within regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
